"""Session-scoped engine state: one ``EngineSession`` per database.

Everything a query touches at runtime — the database, the prepared-query
:class:`~repro.horsepower.cache.PlanCache`, the
:class:`~repro.core.execpool.ExecutorPool`, the tracer, the
:class:`~repro.obs.MetricsRegistry`, the UDF registry, and the
:class:`~repro.engine.backends.BackendRegistry` — used to live in
process globals reached through module-level lookups.  An
:class:`EngineSession` owns one instance of each instead, and every
pipeline stage (parse → plan → translate → compile → execute) receives
the session's :class:`~repro.core.context.QueryContext` explicitly, so

* two sessions in one process never share caches, pools, counters, or
  trace buffers (the concurrent-session tests exercise exactly this);
* the process-global behavior survives unchanged through
  :meth:`EngineSession.ambient`, which wires a session to the global
  metrics registry, the process-shared pool, and the dynamically
  resolved ambient tracer — that is what the
  :class:`~repro.horsepower.system.HorsePowerSystem` and
  :class:`~repro.horsepower.baseline.MonetDBLike` facades build on.

A session is a context manager; closing it shuts down the pool it owns
(idempotently — closing twice, or after ``close_shared_pool`` at
interpreter exit, is safe by design).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.core import types as ht
from repro.core.context import QueryContext
from repro.core.passes import resolve_pipeline
from repro.core.execpool import ExecutorPool
from repro.core.values import TableValue
from repro.engine.backends import (
    DEFAULT_BACKEND, BackendRegistry, CompilationUnit, default_registry,
)
from repro.engine.governor import QueryGovernor
from repro.errors import GovernorError, HorseRuntimeError
from repro.engine.executor import PlanExecutor
from repro.engine.storage import Database
from repro.matlang.frontend import MatlabProgram, matlab_to_module
from repro.obs import (
    BYTE_BUCKETS, NULL_PROFILE, NULL_TRACER, QERROR_BUCKETS,
    AllocationProfile, MetricsRegistry, SessionTelemetry, Tracer,
    get_profile, get_tracer, global_metrics,
)
from repro.stats import MISESTIMATE_THRESHOLD, StatsStore, q_error
from repro.sql.parser import parse_sql
from repro.sql.plan import plan_to_json
from repro.sql.planner import plan_query
from repro.sql.udf import ScalarUDF, TableUDFDef, UDFRegistry

# The plan cache lives under repro.horsepower for historical import
# compatibility; its package __init__ is lazy (PEP 562), so this import
# does not pull in the facades and no cycle forms.
from repro.horsepower.cache import (
    DEFAULT_PLAN_CACHE_SIZE, CacheStats, PlanCache, PreparedQuery,
)

__all__ = ["EngineSession", "CompiledQuery"]

#: Runtime failures the graceful-degradation retry may re-run on the
#: backend's declared fallback (cgen → pygen → interp).  Deliberately
#: narrow: governor errors (timeout/budget/admission) are policy, not
#: engine failure, and frontend/builtin errors reproduce identically on
#: every backend, so retrying them would only waste the fallback chain.
_RETRYABLE_ERRORS = (HorseRuntimeError,)

#: Sentinel for :meth:`EngineSession.ambient`: resolve the process-shared
#: pool dynamically per query instead of owning one.
_SHARED_POOL = object()


@dataclass
class CompiledQuery:
    """A compiled SQL query with its full provenance chain.

    ``program`` is whatever executable the backend produced (a
    :class:`~repro.core.compiler.CompiledProgram`, the interpreter's
    module wrapper, or the baseline's plan); ``backend`` names the
    registry entry that compiled it and will execute it."""

    sql: str
    plan_json: dict
    module_before_opt: object  # ir.Module as built (pre-optimization)
    program: object
    session: "EngineSession"
    backend: str = DEFAULT_BACKEND

    def run(self, n_threads: int = 1,
            ctx: QueryContext | None = None, **kwargs) -> TableValue:
        session = self.session
        if ctx is None:
            ctx = session.context()
        engine = session.backends.get(self.backend)
        return engine.execute(self.program, ctx, db=session.db,
                              n_threads=n_threads, **kwargs)

    @property
    def report(self):
        """The backend's :class:`CompileReport` (None for executables
        that carry no report, e.g. the baseline's plan)."""
        return getattr(self.program, "report", None)

    @property
    def compile_seconds(self) -> float:
        """The paper's COMP column: optimize + codegen time."""
        report = self.report
        return report.compile_seconds if report is not None else 0.0

    @property
    def optimize_seconds(self) -> float:
        """The optimizer's share of COMP."""
        report = self.report
        return report.optimize_seconds if report is not None else 0.0

    @property
    def codegen_seconds(self) -> float:
        """The code-generation (plus verify/segmentation) share of
        COMP."""
        report = self.report
        return report.codegen_seconds if report is not None else 0.0

    @property
    def kernel_sources(self) -> list[str]:
        return list(getattr(self.program, "kernel_sources", []))


class EngineSession:
    """One isolated engine instance: database, plan cache, executor
    pool, tracer, metrics, UDFs, and backends, with no process-global
    state shared between sessions.

    A plain ``EngineSession()`` is fully isolated: its own
    :class:`MetricsRegistry`, its own :class:`ExecutorPool` (closed with
    the session), a null tracer unless one is passed, and a fresh
    backend registry.  :meth:`ambient` instead builds the
    process-default session the facades use."""

    def __init__(self, db: Database | None = None,
                 udfs: UDFRegistry | None = None, *,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 pool: ExecutorPool | None = None,
                 backends: BackendRegistry | None = None,
                 default_backend: str = DEFAULT_BACKEND,
                 max_workers: int | None = None,
                 profile: AllocationProfile | None = None,
                 governor: QueryGovernor | None = None,
                 query_log=None,
                 telemetry: SessionTelemetry | None = None):
        self.db = db if db is not None else Database()
        self.udfs = udfs if udfs is not None else UDFRegistry()
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry())
        self._tracer = tracer
        #: Ambient sessions resolve ``get_tracer()`` per query so
        #: ``use_tracer``/``set_tracer`` swaps are honored, exactly as
        #: the pre-session facades behaved.
        self._ambient_tracer = False
        #: The session's allocation profile (NULL_PROFILE unless one is
        #: passed); ambient sessions instead resolve ``get_profile()``
        #: per query, mirroring the tracer.
        self._profile = profile
        self._ambient_profile = False
        if pool is _SHARED_POOL:
            self._pool = None       # resolve shared_pool() per query
            self._owns_pool = False
        elif pool is None:
            self._pool = ExecutorPool(max_workers, metrics=self.metrics)
            self._owns_pool = True
        else:
            self._pool = pool
            self._owns_pool = False
        self.backends = (backends if backends is not None
                         else default_registry())
        self.default_backend = default_backend
        #: The session's resource policy.  Unconfigured by default —
        #: every query runs ungoverned unless limits are passed to
        #: ``run_sql`` or set on the governor.
        self.governor = (governor if governor is not None
                         else QueryGovernor(metrics=self.metrics))
        #: Production telemetry (query log / flight recorder /
        #: Prometheus endpoint, see :mod:`repro.obs.telemetry`).
        #: Unconfigured — and one attribute read per query — unless
        #: ``query_log=`` / ``telemetry=`` is passed or
        #: :meth:`configure_telemetry` is called.
        self.telemetry = (telemetry if telemetry is not None
                          else SessionTelemetry(metrics=self.metrics))
        if query_log is not None:
            self.telemetry.configure(query_log=query_log)
        self.plan_cache = PlanCache(plan_cache_size,
                                    metrics=self.metrics)
        #: Table/column statistics (:mod:`repro.stats`).  Empty — and
        #: one attribute read per query — until :meth:`analyze` runs.
        self.stats = StatsStore()
        self._baseline_executor: PlanExecutor | None = None
        self._closed = False
        self._metric_queries = self.metrics.counter("query.count")
        self._metric_query_seconds = self.metrics.histogram(
            "query.seconds")

    @classmethod
    def ambient(cls, db: Database | None = None,
                udfs: UDFRegistry | None = None, *,
                plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                backends: BackendRegistry | None = None,
                default_backend: str = DEFAULT_BACKEND,
                governor: QueryGovernor | None = None) \
            -> "EngineSession":
        """The process-default wiring: global metrics, the shared
        executor pool (resolved per query, so pool resets at interpreter
        exit are harmless), and the dynamically resolved ambient tracer.
        This is what :class:`HorsePowerSystem` and :class:`MonetDBLike`
        sit on — existing entry points keep their exact observable
        behavior."""
        session = cls(db, udfs, plan_cache_size=plan_cache_size,
                      metrics=global_metrics(), pool=_SHARED_POOL,
                      backends=backends,
                      default_backend=default_backend,
                      governor=governor)
        session._ambient_tracer = True
        session._ambient_profile = True
        return session

    # -- context --------------------------------------------------------------

    @property
    def tracer(self):
        if self._ambient_tracer:
            return get_tracer()
        return self._tracer if self._tracer is not None else NULL_TRACER

    @property
    def profile(self):
        if self._ambient_profile:
            return get_profile()
        return (self._profile if self._profile is not None
                else NULL_PROFILE)

    @property
    def pool(self) -> ExecutorPool | None:
        """The session's pool; ``None`` on ambient sessions, which
        borrow the process-shared pool per query."""
        return self._pool

    def context(self) -> QueryContext:
        """A fresh :class:`QueryContext` carrying this session's tracer,
        metrics, and pool — the object threaded explicitly through
        parse → plan → translate → compile → execute."""
        return QueryContext(tracer=self.tracer, metrics=self.metrics,
                            pool=self._pool, session=self,
                            profile=self.profile)

    def _ctx(self, ctx: QueryContext | None) -> QueryContext:
        return ctx if ctx is not None else self.context()

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session's resources.  Idempotent: closing twice,
        or after the pool was already shut down at interpreter exit, is
        a no-op."""
        if self._closed:
            return
        self._closed = True
        self.telemetry.close()
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- telemetry ------------------------------------------------------------

    def configure_telemetry(self, **kwargs) -> SessionTelemetry:
        """Turn on any subset of the session's production telemetry —
        ``query_log=`` (path/stream/:class:`~repro.obs.QueryLog`),
        ``slow_query_ms=``, ``sample_rate=``, ``flight_recorder=``
        (capacity), ``diagnostics_dir=`` (automatic postmortem bundles
        on engine/governor failures), and ``serve_metrics=`` (a port;
        starts the Prometheus ``/metrics`` endpoint over this
        session's registry).  See ``docs/telemetry.md``."""
        return self.telemetry.configure(**kwargs)

    def dump_diagnostics(self, directory) -> str:
        """Write a postmortem diagnostics bundle (final span tree,
        metrics snapshot, profile, backend registry, environment
        summary, flight-recorder contents) under ``directory`` and
        return the bundle path.  Called automatically on
        :class:`GovernorError`/:class:`HorseRuntimeError` when the
        telemetry has a ``diagnostics_dir``; callable manually any
        time."""
        return self.telemetry.dump_diagnostics(self, directory)

    # -- UDF registration -----------------------------------------------------

    def register_scalar_udf(self, name: str, matlab_source: str,
                            param_types: list[ht.HorseType],
                            ret_type: ht.HorseType = ht.F64,
                            python_impl=None) -> ScalarUDF:
        udf = ScalarUDF(name, list(param_types), ret_type,
                        matlab_source=matlab_source,
                        python_impl=python_impl)
        self.udfs.register(udf)
        self.plan_cache.invalidate()
        return udf

    def register_table_udf(self, name: str, matlab_source: str,
                           param_types: list[ht.HorseType],
                           output_columns: list[tuple[str, ht.HorseType]],
                           python_impl=None) -> TableUDFDef:
        udf = TableUDFDef(name, list(param_types),
                          list(output_columns),
                          matlab_source=matlab_source,
                          python_impl=python_impl)
        self.udfs.register(udf)
        self.plan_cache.invalidate()
        return udf

    # -- statistics -----------------------------------------------------------

    def analyze(self, table: str | None = None):
        """Collect table/column statistics (``ANALYZE``).

        Analyzes ``table`` — or every table in the database — into the
        session's :class:`~repro.stats.StatsStore`: row counts,
        min/max, null fractions, distinct counts, and equi-depth
        histograms (see ``docs/statistics.md``).  The store's
        fingerprint changes, so previously cached plans (estimated or
        reordered under older statistics) can no longer be served; the
        plan cache is invalidated eagerly to reclaim them.  Returns the
        list of :class:`~repro.stats.TableStats` collected."""
        collected = self.db.analyze_into(self.stats, table)
        self.plan_cache.invalidate()
        return collected

    # -- SQL ------------------------------------------------------------------

    def plan_sql(self, sql: str, ctx: QueryContext | None = None, *,
                 pipeline=None):
        """Parse + plan; returns ``(plan, plan_json)`` — the logical
        plan node and its JSON form (the translator's input).

        ``pipeline`` selects which plan-level rewrite passes run after
        the raw plan is built (every preset runs predicate pushdown then
        column pruning; a custom pass list runs exactly what it
        names)."""
        ctx = self._ctx(ctx)
        with ctx.tracer.span("parse"):
            select = parse_sql(sql)
        with ctx.tracer.span("plan"):
            plan = plan_query(select, self.db.catalog(), self.udfs,
                              pipeline=pipeline,
                              table_stats=self.stats
                              if self.stats.enabled else None)
            plan_json = plan_to_json(plan)
        return plan, plan_json

    def compile_sql(self, sql: str, opt_level: str = "opt",
                    backend: str | None = None,
                    ctx: QueryContext | None = None, *,
                    pipeline=None, verify_ir: bool = False,
                    dump_ir: str | None = None) -> CompiledQuery:
        """Compile ``sql`` for one backend from the session registry
        (capability fallback applies: an unavailable backend degrades
        along its declared chain).

        ``pipeline`` overrides the pass preset ``opt_level`` implies for
        both the plan-level and IR-level passes; ``verify_ir=True``
        re-verifies the IR after every optimizer pass
        (:class:`~repro.errors.PassVerificationError` on failure);
        ``dump_ir`` names a directory for per-pass IR snapshots."""
        ctx = self._ctx(ctx)
        engine = self.backends.resolve(backend or self.default_backend,
                                       require=("sql",))
        plan, plan_json = self.plan_sql(sql, ctx=ctx, pipeline=pipeline)
        module = None
        if "horseir" in engine.capabilities:
            from repro.horsepower.translate import build_query_module
            with ctx.tracer.span("translate"):
                module = build_query_module(plan_json, self.udfs)
        unit = CompilationUnit(opt_level=opt_level, module=module,
                               plan=plan, plan_json=plan_json,
                               udfs=self.udfs, sql=sql,
                               pipeline=pipeline, verify_ir=verify_ir,
                               dump_ir=dump_ir)
        program = engine.compile(unit, ctx)
        return CompiledQuery(sql, plan_json, module, program, self,
                             backend=engine.name)

    def prepare(self, sql: str, opt_level: str = "opt",
                backend: str | None = None, use_cache: bool = True,
                ctx: QueryContext | None = None, *,
                pipeline=None, verify_ir: bool = False,
                dump_ir: str | None = None) -> PreparedQuery:
        """Fetch (or compile and cache) the prepared form of ``sql``.

        The cache key carries the resolved backend's canonical name,
        the catalog and UDF-registry fingerprints, and the pass-pipeline
        fingerprint, so a schema change, a UDF registration, or a
        different ``--passes`` pipeline can never serve a stale plan.
        Backends that do not advertise the ``prepared`` capability (the
        baseline) bypass the cache, as do ``use_cache=False`` and the
        debug modes (``verify_ir``/``dump_ir`` must actually compile to
        verify or dump anything)."""
        ctx = self._ctx(ctx)
        engine = self.backends.resolve(backend or self.default_backend,
                                       require=("sql",))
        use_cache = (use_cache and "prepared" in engine.capabilities
                     and not verify_ir and dump_ir is None)
        fingerprint = resolve_pipeline(
            pipeline, opt_level=opt_level).fingerprint()
        with ctx.tracer.span("prepare") as span:
            key = self.plan_cache.key(sql, opt_level, engine.name,
                                      self.db.schema_fingerprint(),
                                      self.udfs.fingerprint(),
                                      fingerprint,
                                      self.stats.fingerprint())
            if use_cache:
                cached = self.plan_cache.lookup(key)
                if cached is not None:
                    span.set(cached=True)
                    return PreparedQuery(cached, cached=True, key=key)
            compiled = self.compile_sql(sql, opt_level,
                                        backend=engine.name, ctx=ctx,
                                        pipeline=pipeline,
                                        verify_ir=verify_ir,
                                        dump_ir=dump_ir)
            if use_cache:
                self.plan_cache.insert(key, compiled)
            span.set(cached=False)
            return PreparedQuery(compiled, cached=False, key=key)

    def run_sql(self, sql: str, n_threads: int = 1,
                opt_level: str = "opt", backend: str | None = None,
                use_cache: bool = True,
                ctx: QueryContext | None = None,
                timeout: float | None = None,
                memory_budget: int | None = None,
                pipeline=None, verify_ir: bool = False,
                dump_ir: str | None = None,
                **kwargs) -> TableValue:
        """Prepare (cache permitting) and execute ``sql``, governed.

        ``timeout`` (seconds) sets a deadline enforced cooperatively at
        chunk/statement/pass checkpoints (:class:`QueryTimeout` past
        it); ``memory_budget`` (bytes) bounds materialized allocation
        at the profiler charge points (:class:`MemoryBudgetExceeded`
        beyond it).  Both default to the session governor's defaults;
        with neither set anywhere, the query runs exactly as before the
        governor existed.  When the governor has a concurrency limit,
        the query first holds an admission slot
        (:class:`AdmissionRejected` when none frees up in time), and a
        runtime failure degrades down the backend fallback chain when
        :attr:`QueryGovernor.retry_fallback` allows it.

        With session telemetry enabled (:meth:`configure_telemetry`),
        every call — successful, refused, or failed — additionally
        leaves one structured query-log record and a flight-recorder
        entry; engine/governor failures auto-dump a diagnostics bundle
        when a diagnostics directory is configured.
        """
        ctx = self._ctx(ctx)
        backend_label = backend or self.default_backend
        telemetry = self.telemetry
        record = None
        if telemetry.enabled:
            # Telemetry needs the span tree for per-phase times; when
            # the session isn't tracing, give this query a private
            # tracer so the record (and any diagnostics bundle) still
            # carries provenance.
            if not ctx.tracer.enabled:
                ctx = replace(ctx, tracer=Tracer())
            record = telemetry.begin_query(
                sql, backend=backend_label, opt_level=opt_level,
                n_threads=n_threads)
        governor = self.governor
        limits = governor.grant(timeout=timeout,
                                memory_budget=memory_budget)
        if limits is not None:
            profile = ctx.profile
            if limits.memory_budget is not None:
                profile = governor.budgeted_profile(limits,
                                                    base=profile)
            ctx = replace(ctx, limits=limits, profile=profile)
        profile = ctx.profile
        if profile.enabled:
            bytes_before, inter_before = profile.counters()
        start = time.perf_counter()
        root_span = None
        failure: BaseException | None = None
        try:
            with governor.admit():
                with ctx.tracer.span(
                        "query", system="horsepower", sql=sql,
                        opt_level=opt_level, backend=backend_label,
                        n_threads=n_threads) as span:
                    root_span = span
                    if limits is not None:
                        if limits.timeout is not None:
                            span.set(timeout=limits.timeout)
                        if limits.memory_budget is not None:
                            span.set(
                                memory_budget=limits.memory_budget)
                        limits.check("admission")
                    result = self._run_governed(
                        sql, opt_level, backend, use_cache, ctx,
                        n_threads, span, kwargs, pipeline=pipeline,
                        verify_ir=verify_ir, dump_ir=dump_ir)
                    if record is not None:
                        span.set(rows_returned=result.num_rows)
                    if profile.enabled:
                        bytes_after, inter_after = profile.counters()
                        alloc = bytes_after - bytes_before
                        span.set(alloc_bytes=alloc,
                                 peak_bytes=profile.peak_bytes)
                        metrics = ctx.metrics
                        metrics.counter("prof.bytes_allocated").inc(
                            alloc)
                        metrics.counter(
                            "prof.intermediates_materialized").inc(
                            inter_after - inter_before)
                        metrics.gauge("prof.peak_bytes").set_max(
                            profile.peak_bytes)
                        metrics.histogram(
                            "prof.query_bytes",
                            bounds=BYTE_BUCKETS).observe(alloc)
        except GovernorError as exc:
            governor.note_failure(exc)
            failure = exc
            raise
        except BaseException as exc:
            failure = exc
            raise
        finally:
            if record is not None:
                telemetry.finish_query(
                    record, self, root_span,
                    wall_seconds=time.perf_counter() - start,
                    error=failure)
        self._metric_queries.inc()
        self._metric_query_seconds.observe(time.perf_counter() - start)
        return result

    def _run_governed(self, sql: str, opt_level: str,
                      backend: str | None, use_cache: bool,
                      ctx: QueryContext, n_threads: int, span,
                      kwargs: dict, *, pipeline=None,
                      verify_ir: bool = False,
                      dump_ir: str | None = None) -> TableValue:
        """Prepare + execute with graceful backend degradation.

        A :class:`HorseRuntimeError` out of a backend whose registry
        entry declares a fallback re-prepares and re-runs the query one
        step down the chain (cgen → pygen → interp), counting
        ``query.retries`` and annotating the query span; errors that
        would reproduce identically everywhere (syntax, planning,
        builtins, governor policy) propagate immediately.
        """
        engine = self.backends.resolve(backend or self.default_backend,
                                       require=("sql",))
        name = engine.name
        retries = 0
        while True:
            try:
                prepared = self.prepare(sql, opt_level, backend=name,
                                        use_cache=use_cache, ctx=ctx,
                                        pipeline=pipeline,
                                        verify_ir=verify_ir,
                                        dump_ir=dump_ir)
                result = prepared.query.run(n_threads=n_threads,
                                            ctx=ctx, **kwargs)
                if self.stats.enabled:
                    self._note_estimate(prepared.query.plan_json,
                                        result, span)
                return result
            except _RETRYABLE_ERRORS as exc:
                fallback = self.backends.get(name).fallback
                if fallback is None or not self.governor.retry_fallback:
                    raise
                retries += 1
                ctx.metrics.counter("query.retries").inc()
                span.set(retries=retries, retried_from=name,
                         retry_error=f"{type(exc).__name__}: {exc}")
                name = self.backends.resolve(
                    fallback, require=("sql",)).name
                # The span's backend now names the engine that actually
                # ran the query — telemetry records it as provenance.
                span.set(backend=name)

    def _note_estimate(self, plan_json: dict, result: TableValue,
                       span) -> None:
        """Record est-vs-actual for a finished query: ``est_rows`` /
        ``rows_out`` / ``q_error`` on the query span (rendered as
        ``rows est=… actual=…`` by EXPLAIN ANALYZE and copied into the
        telemetry record), the ``stats.q_error`` histogram, and the
        ``stats.misestimates`` counter past
        :data:`~repro.stats.MISESTIMATE_THRESHOLD`."""
        est = plan_json.get("est_rows")
        if est is None:
            return
        actual = result.num_rows
        q = q_error(est, actual)
        span.set(est_rows=est, rows_out=actual, q_error=round(q, 3))
        self.metrics.histogram("stats.q_error",
                               bounds=QERROR_BUCKETS).observe(q)
        if q > MISESTIMATE_THRESHOLD:
            self.metrics.counter("stats.misestimates").inc()

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction/invalidation counters for the plan
        cache."""
        return self.plan_cache.stats

    # -- baseline -------------------------------------------------------------

    def baseline_executor(self) -> PlanExecutor:
        """The session's MonetDB-like plan executor, created on first
        use and kept for the session's lifetime so its UDF-bridge
        conversion counters accumulate across queries."""
        if self._baseline_executor is None:
            self._baseline_executor = PlanExecutor(
                self.db, self.udfs,
                ctx=None if self._ambient_tracer else self.context())
        return self._baseline_executor

    # -- standalone MATLAB ----------------------------------------------------

    def compile_matlab(self, source: str, param_specs=None,
                       opt_level: str = "opt",
                       backend: str | None = None,
                       module_name: str = "MatlabModule",
                       ctx: QueryContext | None = None, *,
                       pipeline=None, verify_ir: bool = False,
                       dump_ir: str | None = None) -> MatlabProgram:
        """MATLAB source → HorseIR → an executable on one of the
        session's backends."""
        ctx = self._ctx(ctx)
        engine = self.backends.resolve(backend or self.default_backend,
                                       require=("matlab",))
        module = matlab_to_module(source, param_specs,
                                  module_name=module_name)
        unit = CompilationUnit(opt_level=opt_level, module=module,
                               udfs=self.udfs, pipeline=pipeline,
                               verify_ir=verify_ir, dump_ir=dump_ir)
        compiled = engine.compile(unit, ctx)
        return MatlabProgram(module, compiled,
                             ctx=None if self._ambient_tracer else ctx)

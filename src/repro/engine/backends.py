"""Pluggable execution backends behind one ``Backend`` interface.

The paper's architecture compiles every input language into one IR and
then hands it to *an* execution engine; historically this reproduction
hard-coded four engines across three modules (the reference interpreter,
generated NumPy kernels, emitted C kernels, and the MonetDB-like
baseline), each reached through its own code path.  This module unifies
them:

* :class:`Backend` — the protocol every engine implements: a ``name``,
  a set of ``capabilities``, ``compile(unit, ctx)`` producing an
  executable, and ``execute(compiled, ctx, ...)`` running it;
* :class:`BackendRegistry` — named backends plus aliases, with
  **capability-based fallback**: resolving a backend that is unavailable
  (no gcc) or lacks a required capability walks its declared fallback
  chain (``cgen`` → ``pygen``) instead of failing, and the ``cgen``
  engine additionally falls back *per segment* at runtime for string or
  compressed data its native kernels cannot express;
* :func:`default_registry` — a fresh registry with the four standard
  engines (``interp``, ``pygen``, ``cgen``, ``baseline``) and the
  historical aliases (``python`` → ``pygen``, ``c`` → ``cgen``,
  ``monetdb`` → ``baseline``).

Registries are plain instances — each
:class:`~repro.engine.session.EngineSession` gets its own, so one
session can register an experimental backend without affecting any
other session in the process.

Capability tokens used by the standard engines:

========== ===========================================================
token      meaning
========== ===========================================================
sql        can execute SQL-derived work
matlab     can execute standalone MATLAB programs
horseir    consumes the HorseIR module (translate step required)
fusion     fuses segments into loop kernels (HorsePower-Opt profile)
threads    honors ``n_threads`` with chunked parallelism
native     emits machine code (C + OpenMP) for eligible segments
strings    full string/date kernel support without fallback
prepared   compilation is worth caching in the session plan cache
========== ===========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import builtins as hb
from repro.core import ir
from repro.core.codegen.cgen import c_backend_available
from repro.core.codegen.executor import DEFAULT_CHUNK_SIZE
from repro.core.compiler import (
    CompiledProgram, CompileReport, c_kernel_factory, compile_module,
    python_kernel_factory,
)
from repro.core.context import QueryContext, ensure_context
from repro.core.interp import Interpreter
from repro.core.optimizer import optimize
from repro.core.passes import resolve_pipeline
from repro.core.values import TableValue, Value
from repro.core.verify import verify_module
from repro.engine.executor import PlanExecutor
from repro.errors import HorseRuntimeError

__all__ = ["Backend", "BackendRegistry", "BackendError",
           "CompilationUnit", "InterpProgram", "default_registry",
           "DEFAULT_BACKEND"]

#: The backend used when a caller does not pick one.
DEFAULT_BACKEND = "pygen"


class BackendError(ValueError):
    """Unknown, unavailable, or incapable backend."""


@dataclass
class CompilationUnit:
    """What the pipeline hands a backend to compile.

    HorseIR engines consume ``module``; the baseline consumes ``plan``.
    ``plan_json`` and ``sql`` ride along as provenance.  ``pipeline``
    (a preset name, comma list, or
    :class:`~repro.core.passes.Pipeline`) overrides the optimization
    preset ``opt_level`` implies; ``verify_ir``/``dump_ir`` switch on
    inter-pass verification and per-pass IR snapshots."""

    opt_level: str = "opt"
    module: ir.Module | None = None
    plan: object | None = None
    plan_json: dict | None = None
    udfs: object | None = None
    sql: str | None = None
    pipeline: object | None = None
    verify_ir: bool = False
    dump_ir: str | None = None


class Backend:
    """One execution engine.  Subclasses override the class attributes
    and the ``compile``/``execute`` pair; ``available`` answers whether
    the engine can run in this environment (the registry consults it
    when resolving with fallback)."""

    name: str = "abstract"
    description: str = ""
    capabilities: frozenset = frozenset()
    #: Name of the backend resolution degrades to when this one is
    #: unavailable or lacks a required capability (None = no fallback).
    fallback: str | None = None

    def available(self) -> bool:
        return True

    def compile(self, unit: CompilationUnit, ctx: QueryContext):
        raise NotImplementedError

    def execute(self, compiled, ctx: QueryContext, *, db=None,
                tables: dict[str, TableValue] | None = None,
                args: list[Value] | None = None,
                method: str | None = None, n_threads: int = 1,
                chunk_size: int = DEFAULT_CHUNK_SIZE, **kwargs):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Backend {self.name}>"


class InterpProgram:
    """The interpreter's "executable": the (optionally optimized) module
    plus a :class:`CompileReport` so it quacks like a
    :class:`~repro.core.compiler.CompiledProgram` (``run``, ``report``,
    ``kernel_sources``, ``module``)."""

    def __init__(self, module: ir.Module, report: CompileReport):
        self.module = module
        self.report = report

    @property
    def kernel_sources(self) -> list[str]:
        return []

    def run(self, tables: dict[str, TableValue] | None = None,
            args: list[Value] | None = None,
            method: str | None = None, n_threads: int = 1,
            chunk_size: int = DEFAULT_CHUNK_SIZE,
            ctx: QueryContext | None = None) -> Value:
        ctx = ensure_context(ctx)
        interp = Interpreter(self.module, hb.EvalContext(tables),
                             qctx=ctx)
        tracer = ctx.tracer
        if not tracer.enabled:
            return interp.run(method, args)
        with tracer.span("execute", method=method or
                         self.module.entry.name, n_threads=n_threads,
                         opt_level=self.report.opt_level):
            return interp.run(method, args)


class _HorseIRBackend(Backend):
    """Shared execute path for engines that run HorseIR programs."""

    def execute(self, compiled, ctx: QueryContext, *, db=None,
                tables=None, args=None, method=None, n_threads=1,
                chunk_size=DEFAULT_CHUNK_SIZE, **kwargs):
        ctx = ensure_context(ctx)
        if tables is None and db is not None:
            with ctx.tracer.span("bind-tables"):
                tables = db.to_table_values()
        return compiled.run(tables, args=args, method=method,
                            n_threads=n_threads, chunk_size=chunk_size,
                            ctx=ctx, **kwargs)


class InterpBackend(_HorseIRBackend):
    """The reference interpreter: statement-at-a-time, everything
    materialized — the paper's MAL-style execution profile.  Slowest,
    but dependency-free and the parity oracle for the others."""

    name = "interp"
    description = ("reference HorseIR interpreter (full "
                   "materialization, the parity oracle)")
    capabilities = frozenset({"sql", "matlab", "horseir", "strings",
                              "prepared"})

    def compile(self, unit: CompilationUnit,
                ctx: QueryContext) -> InterpProgram:
        if unit.module is None:
            raise BackendError("interp backend needs a HorseIR module")
        ctx = ensure_context(ctx)
        pipeline = resolve_pipeline(unit.pipeline,
                                    opt_level=unit.opt_level)
        with ctx.tracer.span("compile", opt_level=unit.opt_level,
                             backend=self.name):
            start = time.perf_counter()
            module = unit.module
            verify_module(module)
            stats = None
            optimize_seconds = 0.0
            if pipeline.ir_passes or unit.verify_ir \
                    or unit.dump_ir is not None:
                opt_start = time.perf_counter()
                with ctx.tracer.span("optimize") as opt_span:
                    module, stats = optimize(module, tracer=ctx.tracer,
                                             limits=ctx.limits,
                                             pipeline=pipeline,
                                             metrics=ctx.metrics,
                                             span=opt_span,
                                             verify_ir=unit.verify_ir,
                                             dump_ir=unit.dump_ir)
                    verify_module(module)
                optimize_seconds = time.perf_counter() - opt_start
            total = time.perf_counter() - start
        report = CompileReport(unit.opt_level, total, stats,
                               backend=self.name,
                               optimize_seconds=optimize_seconds,
                               codegen_seconds=total - optimize_seconds)
        ctx.metrics.counter("compile.count").inc()
        return InterpProgram(module, report)


class PygenBackend(_HorseIRBackend):
    """Generated NumPy kernels — the always-available compiled engine."""

    name = "pygen"
    description = ("generated NumPy loop kernels (chunked, "
                   "multi-threaded; always available)")
    capabilities = frozenset({"sql", "matlab", "horseir", "fusion",
                              "threads", "strings", "prepared"})
    fallback = "interp"

    def compile(self, unit: CompilationUnit,
                ctx: QueryContext) -> CompiledProgram:
        if unit.module is None:
            raise BackendError("pygen backend needs a HorseIR module")
        return compile_module(unit.module, unit.opt_level, ctx=ctx,
                              backend="python",
                              kernel_factory=python_kernel_factory,
                              pipeline=unit.pipeline,
                              verify_ir=unit.verify_ir,
                              dump_ir=unit.dump_ir)


class CgenBackend(_HorseIRBackend):
    """Emitted C + OpenMP kernels, compiled with gcc per segment.
    Segments the native engine cannot express (strings, compressed
    selections) fall back to the pygen kernel at runtime — the
    capability fallback made per-segment."""

    name = "cgen"
    description = ("emitted C + OpenMP kernels via gcc (per-segment "
                   "pygen fallback for strings/compressed)")
    capabilities = frozenset({"sql", "matlab", "horseir", "fusion",
                              "threads", "native", "prepared"})
    fallback = "pygen"

    def available(self) -> bool:
        return c_backend_available()

    def compile(self, unit: CompilationUnit,
                ctx: QueryContext) -> CompiledProgram:
        if unit.module is None:
            raise BackendError("cgen backend needs a HorseIR module")
        if not self.available():
            raise BackendError("the C backend needs gcc on PATH")
        return compile_module(unit.module, unit.opt_level, ctx=ctx,
                              backend="c",
                              kernel_factory=c_kernel_factory,
                              pipeline=unit.pipeline,
                              verify_ir=unit.verify_ir,
                              dump_ir=unit.dump_ir)


class BaselinePlan:
    """The baseline's "executable": the logical plan itself (the
    MonetDB-like engine interprets plans, it does not lower them)."""

    def __init__(self, plan, udfs):
        self.plan = plan
        self.udfs = udfs


class BaselineBackend(Backend):
    """The MonetDB-like comparison engine: interpreted plan operators
    over whole columns with black-box Python UDFs."""

    name = "baseline"
    description = ("MonetDB-like interpreted plan execution with "
                   "black-box Python UDFs (the comparison system)")
    capabilities = frozenset({"sql", "threads", "udf-python"})

    def compile(self, unit: CompilationUnit,
                ctx: QueryContext) -> BaselinePlan:
        if unit.plan is None:
            raise BackendError("baseline backend needs a logical plan")
        return BaselinePlan(unit.plan, unit.udfs)

    def execute(self, compiled: BaselinePlan, ctx: QueryContext, *,
                db=None, tables=None, args=None, method=None,
                n_threads=1, chunk_size=DEFAULT_CHUNK_SIZE, **kwargs):
        ctx = ensure_context(ctx)
        session = ctx.session
        if session is not None and db in (None, session.db):
            executor = session.baseline_executor()
        elif db is not None:
            executor = PlanExecutor(db, compiled.udfs, ctx=ctx)
        else:
            raise HorseRuntimeError(
                "baseline execution needs a Database (none bound)")
        return executor.execute(compiled.plan, n_threads=n_threads,
                                ctx=ctx)


class BackendRegistry:
    """Named :class:`Backend` instances plus aliases.

    ``get`` is strict (exact name or alias); ``resolve`` additionally
    walks each backend's declared fallback chain when the backend is
    unavailable in this environment or lacks a required capability —
    e.g. ``resolve("cgen")`` on a box without gcc degrades to
    ``pygen``."""

    def __init__(self):
        self._backends: dict[str, Backend] = {}
        self._aliases: dict[str, str] = {}

    def register(self, backend: Backend,
                 aliases: tuple[str, ...] = ()) -> Backend:
        if backend.name in self._backends:
            raise BackendError(
                f"backend {backend.name!r} is already registered")
        self._backends[backend.name] = backend
        for alias in aliases:
            self._aliases[alias] = backend.name
        return backend

    def names(self) -> list[str]:
        return list(self._backends)

    def aliases(self, name: str) -> list[str]:
        """The alternate names registered for ``name``'s backend."""
        canonical = self._aliases.get(name, name)
        return sorted(alias for alias, target in self._aliases.items()
                      if target == canonical)

    def __contains__(self, name: str) -> bool:
        return name in self._backends or name in self._aliases

    def get(self, name: str) -> Backend:
        canonical = self._aliases.get(name, name)
        try:
            return self._backends[canonical]
        except KeyError:
            known = sorted(set(self._backends) | set(self._aliases))
            raise BackendError(
                f"unknown backend {name!r}; known: "
                f"{', '.join(known)}") from None

    def resolve(self, name: str,
                require: frozenset | set | tuple = ()) -> Backend:
        """The backend for ``name``, degrading along fallback chains
        when it is unavailable or lacks a capability in ``require``."""
        backend = self.get(name)
        required = frozenset(require)
        seen = []
        while True:
            if backend.available() and required <= backend.capabilities:
                return backend
            seen.append(backend.name)
            if backend.fallback is None or backend.fallback in seen:
                missing = sorted(required - backend.capabilities)
                reason = (f"missing capabilities {missing}" if missing
                          else "unavailable in this environment")
                raise BackendError(
                    f"backend {name!r} cannot serve this request "
                    f"({reason}) and no fallback remains "
                    f"(tried {' -> '.join(seen)})")
            backend = self.get(backend.fallback)


def default_registry() -> BackendRegistry:
    """A fresh registry with the four standard engines and the
    historical aliases."""
    registry = BackendRegistry()
    registry.register(InterpBackend())
    registry.register(PygenBackend(), aliases=("python",))
    registry.register(CgenBackend(), aliases=("c",))
    registry.register(BaselineBackend(), aliases=("monetdb",))
    return registry

"""The query governor: resource policy for an :class:`EngineSession`.

The ROADMAP's north star — "serves heavy traffic from millions of
users" — assumes queries are *governed* resources.  Before this module
a single runaway query (a huge scale factor, a pathological UDF, an
unbounded intermediate) held a session's pool and memory hostage with
no timeout, no budget, and no back-pressure.  A
:class:`QueryGovernor`, owned by every
:class:`~repro.engine.session.EngineSession`, enforces four policies:

1. **Deadlines** — :meth:`QueryGovernor.grant` issues a
   :class:`~repro.core.limits.QueryLimits` that the execution layers
   checkpoint against cooperatively (per chunk, per statement, per
   optimizer pass); past the deadline the next checkpoint raises
   :class:`~repro.errors.QueryTimeout`.
2. **Memory budgets** — enforced at the *existing*
   :class:`~repro.obs.prof.AllocationProfile` charge points: the grant
   wraps the context's profile in a :class:`BudgetedAllocationProfile`
   whose ``record`` raises :class:`~repro.errors.MemoryBudgetExceeded`
   instead of silently growing.  No new instrumentation sites.
3. **Admission control** — :meth:`QueryGovernor.admit` is a bounded
   concurrent-query semaphore with a queue-wait histogram
   (``governor.queue_wait_seconds``); when the limit is saturated and
   the admission wait expires, it raises
   :class:`~repro.errors.AdmissionRejected`.
4. **Graceful degradation** — the session's ``run_sql`` consults
   :attr:`QueryGovernor.retry_fallback`: a runtime kernel failure on a
   backend with a declared fallback (``cgen`` → ``pygen`` → ``interp``,
   the registry's capability chain) retries the query on the fallback,
   counting ``query.retries`` and annotating the query span.

Everything is off by default: an unconfigured governor grants no
limits, admits every query without touching a metric, and a query run
with no ``timeout=``/``memory_budget=`` takes the exact pre-governor
code path — golden outputs stay byte-identical and the disabled
checkpoint overhead is bounded at <2% by
``benchmarks/bench_obs_overhead.py``.

Governor metrics (created lazily, only when the policy fires):

========================================  ==============================
``governor.admitted``                     queries admitted under a
                                          concurrency limit
``governor.rejected``                     queries refused admission
``governor.timed_out``                    queries cancelled at a
                                          deadline checkpoint
``governor.cancelled``                    queries stopped by an explicit
                                          cancel or a memory budget
``governor.queue_wait_seconds``           admission queue wait histogram
``query.retries``                         graceful-degradation retries
========================================  ==============================

When session telemetry is configured (``docs/telemetry.md``), every
governed refusal additionally leaves a durable query-log record whose
``outcome`` is the error's ``refusal`` class, and — with a diagnostics
directory set — an automatic postmortem bundle.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.core.limits import QueryLimits
from repro.errors import (AdmissionRejected, MemoryBudgetExceeded,
                          QueryCancelled, QueryTimeout)
from repro.obs import AllocationProfile, MetricsRegistry, global_metrics
from repro.obs.prof import format_bytes

__all__ = ["QueryGovernor", "BudgetedAllocationProfile"]


class BudgetedAllocationProfile(AllocationProfile):
    """An :class:`AllocationProfile` that *enforces* instead of just
    metering: crossing ``budget`` bytes raises
    :class:`~repro.errors.MemoryBudgetExceeded` from the charge point
    itself, so the query stops at the allocation that broke the budget
    rather than after the fact.

    When the query is *also* being profiled (``base``), every charge is
    forwarded so the caller's profile sees exactly what it would have
    seen without the budget — up to the failing charge.
    """

    def __init__(self, budget: int, limits: QueryLimits | None = None,
                 base: AllocationProfile | None = None):
        super().__init__()
        self.budget = budget
        self.limits = limits
        self.base = base if (base is not None
                             and base.enabled) else None

    def record(self, nbytes: int, site: str | None = None,
               count: int = 1) -> None:
        super().record(nbytes, site=site, count=count)
        if self.base is not None:
            self.base.record(nbytes, site=site, count=count)
        allocated = self.bytes_allocated
        if allocated > self.budget:
            raise MemoryBudgetExceeded(
                f"query exceeded its memory budget: "
                f"{format_bytes(allocated)} allocated > "
                f"{format_bytes(self.budget)} budget "
                f"(last charge {format_bytes(nbytes)}"
                f"{'' if site is None else ' at ' + site})")

    def record_builtin(self, name: str, nbytes: int) -> None:
        super().record_builtin(name, nbytes)
        if self.base is not None:
            self.base.record_builtin(name, nbytes)

    def update_peak(self, live_bytes: int) -> None:
        super().update_peak(live_bytes)
        if self.base is not None:
            self.base.update_peak(live_bytes)


class QueryGovernor:
    """Per-session resource policy: admission, deadlines, budgets,
    and the graceful-degradation retry switch.

    All configuration is optional and independently settable — a
    governor with no configuration is a no-op on every path.  The
    governor reports into the owning session's metrics registry;
    instruments are created lazily so ungoverned sessions never grow
    ``governor.*`` entries in their metric snapshots.
    """

    def __init__(self, metrics: MetricsRegistry | None = None, *,
                 max_concurrent: int | None = None,
                 admission_timeout: float = 0.0,
                 default_timeout: float | None = None,
                 default_memory_budget: int | None = None,
                 retry_fallback: bool = True):
        self.metrics = (metrics if metrics is not None
                        else global_metrics())
        self.default_timeout = default_timeout
        self.default_memory_budget = default_memory_budget
        #: Whether ``run_sql`` retries runtime failures down the
        #: backend fallback chain (cgen → pygen → interp).
        self.retry_fallback = retry_fallback
        self._lock = threading.Lock()
        self.max_concurrent: int | None = None
        self.admission_timeout = admission_timeout
        self._semaphore: threading.Semaphore | None = None
        self.configure(max_concurrent=max_concurrent)

    def configure(self, *, max_concurrent: int | None = ...,
                  admission_timeout: float | None = None,
                  default_timeout: float | None = ...,
                  default_memory_budget: int | None = ...,
                  retry_fallback: bool | None = None) -> None:
        """Re-point any subset of the governor's knobs.

        Changing ``max_concurrent`` replaces the admission semaphore;
        callers should reconfigure between queries, not while queries
        are in flight (in-flight queries release into the old
        semaphore, which is then unreferenced and harmless)."""
        with self._lock:
            if max_concurrent is not ...:
                if max_concurrent is not None and max_concurrent < 1:
                    raise ValueError(
                        f"max_concurrent must be >= 1, got "
                        f"{max_concurrent}")
                self.max_concurrent = max_concurrent
                self._semaphore = (
                    None if max_concurrent is None
                    else threading.Semaphore(max_concurrent))
            if admission_timeout is not None:
                if admission_timeout < 0:
                    raise ValueError(
                        f"admission_timeout must be >= 0, got "
                        f"{admission_timeout}")
                self.admission_timeout = admission_timeout
            if default_timeout is not ...:
                self.default_timeout = default_timeout
            if default_memory_budget is not ...:
                self.default_memory_budget = default_memory_budget
            if retry_fallback is not None:
                self.retry_fallback = retry_fallback

    # -- per-query grants ------------------------------------------------------

    def grant(self, timeout: float | None = None,
              memory_budget: int | None = None) -> QueryLimits | None:
        """The :class:`QueryLimits` for one query, or ``None`` when
        neither the call nor the governor's defaults set any limit —
        the fast path that keeps ungoverned queries on the exact
        pre-governor code."""
        if timeout is None:
            timeout = self.default_timeout
        if memory_budget is None:
            memory_budget = self.default_memory_budget
        if timeout is None and memory_budget is None:
            return None
        return QueryLimits(timeout=timeout,
                           memory_budget=memory_budget)

    def budgeted_profile(self, limits: QueryLimits,
                         base=None) -> BudgetedAllocationProfile:
        """The enforcing profile for a grant with a memory budget
        (forwarding to ``base`` when the query is also profiled)."""
        return BudgetedAllocationProfile(limits.memory_budget,
                                         limits=limits, base=base)

    # -- admission -------------------------------------------------------------

    @contextmanager
    def admit(self):
        """Hold one concurrent-query slot for the duration of a query.

        No-op (no metrics, no locking) when ``max_concurrent`` is not
        configured.  When it is: an immediately free slot admits with
        zero recorded wait; otherwise the caller queues for at most
        ``admission_timeout`` seconds and is rejected with
        :class:`~repro.errors.AdmissionRejected` when no slot frees up
        in time (``admission_timeout=0`` rejects immediately —
        back-pressure instead of queueing).
        """
        semaphore = self._semaphore
        if semaphore is None:
            yield False
            return
        wait = 0.0
        admitted = semaphore.acquire(blocking=False)
        if not admitted and self.admission_timeout > 0:
            start = time.monotonic()
            admitted = semaphore.acquire(
                timeout=self.admission_timeout)
            wait = time.monotonic() - start
        if not admitted:
            self.metrics.counter("governor.rejected").inc()
            raise AdmissionRejected(
                f"admission rejected: {self.max_concurrent} "
                f"quer{'y is' if self.max_concurrent == 1 else 'ies are'}"
                f" already running and no slot freed within "
                f"{self.admission_timeout:g} s")
        self.metrics.counter("governor.admitted").inc()
        self.metrics.histogram(
            "governor.queue_wait_seconds").observe(wait)
        try:
            yield True
        finally:
            semaphore.release()

    # -- outcome accounting ----------------------------------------------------

    def note_failure(self, exc: BaseException) -> str:
        """Count a governor-enforced stop (called by ``run_sql`` on the
        way out; rejections are counted inside :meth:`admit`) and
        return the refusal class — the stable ``outcome`` string the
        telemetry query log records (``"timeout"``, ``"memory_budget"``,
        ``"admission_rejected"``, ``"cancelled"``)."""
        if isinstance(exc, QueryTimeout):
            self.metrics.counter("governor.timed_out").inc()
        elif isinstance(exc, (QueryCancelled, MemoryBudgetExceeded)):
            self.metrics.counter("governor.cancelled").inc()
        return getattr(exc, "refusal", "error")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryGovernor(max_concurrent={self.max_concurrent}, "
                f"default_timeout={self.default_timeout}, "
                f"default_memory_budget={self.default_memory_budget}, "
                f"retry_fallback={self.retry_fallback})")

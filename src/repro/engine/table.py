"""Column tables: the storage unit of the engine."""

from __future__ import annotations

import numpy as np

from repro.core import types as ht
from repro.core.values import TableValue, Vector
from repro.errors import StorageError

__all__ = ["ColumnTable"]


class ColumnTable:
    """An in-memory column-oriented table.

    Columns are NumPy 1-D arrays of equal length; each carries a HorseIR
    type so both executors agree on semantics (strings are object arrays,
    dates are ``datetime64[D]``).
    """

    def __init__(self, name: str,
                 columns: dict[str, np.ndarray] | None = None,
                 types: dict[str, ht.HorseType] | None = None):
        self.name = name
        self._columns: dict[str, np.ndarray] = {}
        self._types: dict[str, ht.HorseType] = {}
        for column, array in (columns or {}).items():
            declared = (types or {}).get(column)
            self.add_column(column, array, declared)

    def add_column(self, name: str, array: np.ndarray,
                   type_: ht.HorseType | None = None) -> None:
        array = np.asarray(array)
        if array.ndim != 1:
            raise StorageError(
                f"column {name!r} must be one-dimensional")
        if self._columns and len(array) != self.num_rows:
            raise StorageError(
                f"column {name!r} has {len(array)} rows, table "
                f"{self.name!r} has {self.num_rows}")
        if type_ is None:
            type_ = ht.type_of_dtype(array.dtype)
        if array.dtype.kind in ("U", "S"):
            array = array.astype(object)
        else:
            array = array.astype(ht.numpy_dtype(type_), copy=False)
        if name in self._columns:
            raise StorageError(f"duplicate column {name!r}")
        self._columns[name] = array
        self._types[name] = type_

    @property
    def num_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}") from None

    def column_type(self, name: str) -> ht.HorseType:
        try:
            return self._types[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}") from None

    def schema(self) -> list[tuple[str, ht.HorseType]]:
        return [(name, self._types[name]) for name in self._columns]

    def to_table_value(self) -> TableValue:
        """A zero-copy view as a HorseIR table value."""
        return TableValue([
            (name, Vector(self._types[name], array))
            for name, array in self._columns.items()
        ])

    @classmethod
    def from_table_value(cls, name: str, value: TableValue) -> "ColumnTable":
        table = cls(name)
        for column, vector in value.columns():
            table.add_column(column, vector.data, vector.type)
        return table

    def __repr__(self) -> str:
        return (f"ColumnTable({self.name!r}, {self.num_rows} rows, "
                f"cols={self.column_names})")

"""The black-box UDF bridge: the engine ↔ embedded-Python boundary.

Models MonetDB's embedded-Python UDF interface (Section 2.3 and the
Table 2/4 discussions) with *real* work, not artificial sleeps:

* integer and boolean columns cross by **zero-copy** (binary-compatible
  with NumPy — MonetDB's zero-copy optimization);
* money/measure columns are DECIMAL in the database, stored scaled — they
  cross through a **scaling conversion pass** that materializes a fresh
  double array in each direction (MonetDB's ``dec → dbl`` loop);
* string columns are **re-materialized element by element** in both
  directions: the engine-internal string heap and Python's string objects
  are incompatible, so every value is decoded into a fresh object —
  exactly the cost the paper blames for q12/q19;
* date columns cross as per-element Python date objects, flattened to
  int64 day counts for the UDF;
* the bridge is **single-threaded**: conversions and the UDF body run on
  one thread no matter how many worker threads the query uses (the
  paper's q6/q12/q19 flat-with-threads behaviour).
"""

from __future__ import annotations

import datetime

import numpy as np

from repro.errors import UDFError
from repro.sql.udf import ScalarUDF, TableUDFDef

__all__ = ["UDFBridge"]

class UDFBridge:
    """Calls Python UDF implementations across the conversion boundary."""

    def __init__(self):
        #: counters exposed for tests and the evaluation narrative.
        self.calls = 0
        self.values_converted_in = 0
        self.values_converted_out = 0

    # -- entry points ------------------------------------------------------------

    def call_scalar(self, udf: ScalarUDF,
                    arrays: list[np.ndarray]) -> np.ndarray:
        if udf.python_impl is None:
            raise UDFError(
                f"scalar UDF {udf.name!r} has no Python implementation")
        self.calls += 1
        converted = [self._convert_in(a) for a in arrays]
        result = udf.python_impl(*converted)
        return self._convert_out(np.asarray(result))

    def call_table(self, udf: TableUDFDef,
                   arrays: list[np.ndarray]) -> list[np.ndarray]:
        if udf.python_impl is None:
            raise UDFError(
                f"table UDF {udf.name!r} has no Python implementation")
        self.calls += 1
        converted = [self._convert_in(a) for a in arrays]
        results = udf.python_impl(*converted)
        if len(results) != len(udf.output_columns):
            raise UDFError(
                f"table UDF {udf.name!r} returned {len(results)} "
                f"column(s), declared {len(udf.output_columns)}")
        return [self._convert_out(np.asarray(r)) for r in results]

    # -- the conversion boundary ----------------------------------------------

    def _convert_in(self, array: np.ndarray) -> np.ndarray:
        if array.dtype.kind in ("b", "i", "u"):
            # Zero-copy: binary-compatible with NumPy.
            return array
        if array.dtype.kind == "f":
            return self._convert_decimal(array)
        if array.dtype.kind == "M":
            return self._convert_dates_in(array)
        return self._convert_strings(array)

    def _convert_out(self, array: np.ndarray) -> np.ndarray:
        if array.dtype.kind in ("b", "i", "u"):
            return array
        if array.dtype.kind == "f":
            return self._convert_decimal(array, outbound=True)
        if array.dtype.kind == "M":
            return array
        if array.dtype.kind == "O" and len(array) \
                and isinstance(array.reshape(-1)[0], datetime.date):
            self.values_converted_out += len(array)
            return np.array([np.datetime64(v, "D") for v in array],
                            dtype="datetime64[D]")
        return self._convert_strings(array, outbound=True)

    def _convert_decimal(self, array: np.ndarray,
                         outbound: bool = False) -> np.ndarray:
        """DECIMAL ↔ double: a scaling pass into a fresh array.

        The database stores money columns as scaled integers; handing them
        to a double-typed NumPy UDF (and taking doubles back) requires one
        full conversion pass per direction — never zero-copy.
        """
        if outbound:
            self.values_converted_out += len(array)
        else:
            self.values_converted_in += len(array)
        # The scaling multiply stands in for the dec<->dbl loop; the scale
        # factor itself is not applied so both systems see identical
        # values (results must match bit-for-bit in the tests).
        return np.multiply(array, 1.0)

    def _convert_strings(self, array: np.ndarray,
                         outbound: bool = False) -> np.ndarray:
        """Element-by-element string re-materialization.

        Each value round-trips through its UTF-8 byte representation: the
        engine's heap format and Python strings are incompatible, so a
        fresh object is decoded per element (the q12/q19 bottleneck)."""
        if outbound:
            self.values_converted_out += len(array)
        else:
            self.values_converted_in += len(array)
        out = np.empty(len(array), dtype=object)
        for index, value in enumerate(array):
            out[index] = str(value).encode("utf-8").decode("utf-8")
        return out

    def _convert_dates_in(self, array: np.ndarray) -> np.ndarray:
        """Dates cross as per-element Python objects (then back to an
        int64 day count the UDF can compute with)."""
        self.values_converted_in += len(array)
        days = np.empty(len(array), dtype=np.int64)
        epoch = datetime.date(1970, 1, 1)
        for index, value in enumerate(array.astype(object)):
            days[index] = (value - epoch).days
        return days

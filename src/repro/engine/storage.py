"""The in-memory database: named tables, CSV import/export, catalog
derivation."""

from __future__ import annotations

import csv

import numpy as np

from repro.core import types as ht
from repro.core.values import TableValue
from repro.engine.table import ColumnTable
from repro.errors import StorageError
from repro.sql.catalog import Catalog, TableSchema

__all__ = ["Database"]


class Database:
    """A named collection of column tables (memory-resident, like the
    paper's setup where all data is in main memory before measuring)."""

    def __init__(self):
        self._tables: dict[str, ColumnTable] = {}

    def add_table(self, table: ColumnTable) -> None:
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def create_table(self, name: str, columns: dict[str, np.ndarray],
                     types: dict[str, ht.HorseType] | None = None) \
            -> ColumnTable:
        table = ColumnTable(name, columns, types)
        self.add_table(table)
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(f"unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> ColumnTable:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return list(self._tables)

    def catalog(self) -> Catalog:
        """Derive the SQL catalog from the stored tables."""
        catalog = Catalog()
        for table in self._tables.values():
            catalog.add(TableSchema(table.name, table.schema()))
        return catalog

    def schema_fingerprint(self) -> tuple:
        """A hashable digest of the catalog shape — table names, column
        names, column types — used in plan-cache keys so any schema
        change (new/dropped table, different columns) makes previously
        prepared plans unreachable."""
        return tuple(sorted(
            (name, tuple((column, str(type_))
                         for column, type_ in table.schema()))
            for name, table in self._tables.items()))

    def to_table_values(self) -> dict[str, TableValue]:
        """Zero-copy views for the HorseIR execution context."""
        return {name: table.to_table_value()
                for name, table in self._tables.items()}

    def analyze_into(self, store, name: str | None = None) -> list:
        """Collect statistics for one table (or all of them) into a
        :class:`~repro.stats.StatsStore`; the storage half of
        ``ANALYZE`` (:meth:`EngineSession.analyze` adds the plan-cache
        invalidation on top).  Returns the collected
        :class:`~repro.stats.TableStats`, in table order."""
        names = [name] if name is not None else self.table_names()
        return [store.analyze(table, self.table(table))
                for table in names]

    # -- CSV I/O ---------------------------------------------------------------

    def load_csv(self, name: str, path: str,
                 types: list[tuple[str, ht.HorseType]],
                 delimiter: str = "|") -> ColumnTable:
        """Load a delimited file with a declared schema (dbgen style:
        no header row, ``|`` separated)."""
        names = [column for column, _ in types]
        raw: list[list[str]] = [[] for _ in names]
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            for row in reader:
                if not row:
                    continue
                if len(row) < len(names):
                    raise StorageError(
                        f"{path}: row has {len(row)} fields, "
                        f"expected {len(names)}")
                for index in range(len(names)):
                    raw[index].append(row[index])
        columns: dict[str, np.ndarray] = {}
        declared: dict[str, ht.HorseType] = {}
        for (column, type_), values in zip(types, raw):
            columns[column] = _parse_column(values, type_)
            declared[column] = type_
        return self.create_table(name, columns, declared)

    def save_csv(self, name: str, path: str,
                 delimiter: str = "|") -> None:
        table = self.table(name)
        arrays = [table.column(c) for c in table.column_names]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            for row in zip(*arrays):
                writer.writerow([_format_field(v) for v in row])


def _parse_column(values: list[str], type_: ht.HorseType) -> np.ndarray:
    if type_ in (ht.STR, ht.SYM):
        out = np.empty(len(values), dtype=object)
        for index, value in enumerate(values):
            out[index] = value
        return out
    if type_ == ht.DATE:
        return np.array(values, dtype="datetime64[D]")
    dtype = ht.numpy_dtype(type_)
    if type_ == ht.BOOL:
        return np.array([v.strip().lower() in ("1", "true", "t")
                         for v in values], dtype=np.bool_)
    return np.array(values, dtype=np.float64).astype(dtype)


def _format_field(value) -> str:
    if isinstance(value, np.datetime64):
        return str(value)
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)

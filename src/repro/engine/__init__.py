"""``engine`` — the column-store database substrate (MonetDB stand-in).

Executes logical plans the way MonetDB executes MAL: one vectorized
operator at a time over whole columns, materializing every intermediate,
with embedded Python UDFs called through a black-box bridge
(:mod:`repro.engine.udf_bridge`): integer columns cross zero-copy, decimal
(money) columns pay a conversion pass, and string/date columns convert
element by element — the costs the paper measures in Tables 2 and 4.
"""

from repro.engine.storage import Database  # noqa: F401
from repro.engine.table import ColumnTable  # noqa: F401
from repro.engine.executor import PlanExecutor  # noqa: F401

"""``engine`` — the column-store database substrate and the
session-scoped engine built on top of it.

The substrate (MonetDB stand-in) executes logical plans the way MonetDB
executes MAL: one vectorized operator at a time over whole columns,
materializing every intermediate, with embedded Python UDFs called
through a black-box bridge (:mod:`repro.engine.udf_bridge`): integer
columns cross zero-copy, decimal (money) columns pay a conversion pass,
and string/date columns convert element by element — the costs the
paper measures in Tables 2 and 4.

On top of it, :class:`~repro.engine.session.EngineSession` owns all
per-session runtime state (database, plan cache, executor pool, tracer,
metrics, UDFs) and a :class:`~repro.engine.backends.BackendRegistry` of
the four execution engines; the :class:`~repro.core.context.QueryContext`
re-exported here is the object threaded explicitly through every
pipeline stage.
"""

from repro.core.context import QueryContext  # noqa: F401
from repro.engine.storage import Database  # noqa: F401
from repro.engine.table import ColumnTable  # noqa: F401
from repro.engine.executor import PlanExecutor  # noqa: F401
from repro.engine.backends import (  # noqa: F401
    Backend, BackendRegistry, CompilationUnit, default_registry,
)
from repro.engine.governor import (  # noqa: F401
    BudgetedAllocationProfile, QueryGovernor,
)
from repro.engine.session import CompiledQuery, EngineSession  # noqa: F401

__all__ = ["Database", "ColumnTable", "PlanExecutor", "QueryContext",
           "Backend", "BackendRegistry", "CompilationUnit",
           "default_registry", "EngineSession", "CompiledQuery",
           "QueryGovernor", "BudgetedAllocationProfile"]

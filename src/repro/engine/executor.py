"""The baseline plan executor — how the MonetDB stand-in runs queries.

Execution style mirrors MAL interpretation: each plan operator runs as a
sequence of whole-column vectorized primitives, materializing every
intermediate.  The vector primitives themselves are shared with the
HorseIR runtime (both systems use comparable kernels, the way MonetDB's
BAT algebra and HorsePower's generated code both sit on tight loops); what
differs — and what the benchmarks measure — is

* UDFs run through the black-box :class:`~repro.engine.udf_bridge.UDFBridge`
  (conversion cost, single-threaded, no cross-boundary optimization);
* no fusion: every expression node materializes a full column;
* ``n_threads`` parallelizes only plain column work (filter/project
  chunks); the UDF path stays serial, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core import builtins as hb
from repro.core import types as ht
from repro.core.context import QueryContext, ensure_context
from repro.core.values import ListValue, Vector
from repro.engine.storage import Database
from repro.engine.table import ColumnTable
from repro.engine.udf_bridge import UDFBridge
from repro.errors import ExecutorError
from repro.obs.metrics import QERROR_BUCKETS
from repro.stats import MISESTIMATE_THRESHOLD, q_error
from repro.sql import ast
from repro.sql import plan as p
from repro.sql.udf import UDFRegistry

__all__ = ["PlanExecutor"]

_PARALLEL_MIN_ROWS = 1 << 15


class PlanExecutor:
    """Interprets logical plans over a :class:`Database`.

    Not thread-safe across concurrent ``execute`` calls — each session
    (or thread) owns its own executor, which is how session isolation is
    achieved; the per-query :class:`QueryContext` passed to ``execute``
    names the tracer/metrics/pool one run reports into."""

    def __init__(self, db: Database, udfs: UDFRegistry | None = None,
                 ctx: QueryContext | None = None):
        self.db = db
        self.udfs = udfs or UDFRegistry()
        self.bridge = UDFBridge()
        self._ctx = hb.EvalContext()
        #: The default query context; ``None`` means "resolve the
        #: ambient process context per execute" so tracer swaps
        #: (``use_tracer``) made after construction are honored.
        self._default_qctx = ctx
        self._qctx = ensure_context(ctx)

    def execute(self, node: p.PlanNode, n_threads: int = 1,
                ctx: QueryContext | None = None) -> ColumnTable:
        """Run the plan; returns the result as a column table."""
        self._qctx = ensure_context(
            ctx if ctx is not None else self._default_qctx)
        with self._qctx.tracer.span("execute",
                                    n_threads=n_threads) as span:
            columns = self._exec(node, n_threads)
            span.set(rows_out=_num_rows(columns))
        self._qctx.metrics.counter("exec.rows_produced").inc(
            _num_rows(columns))
        result = ColumnTable("result")
        for name, type_ in node.output:
            result.add_column(name, columns[name], type_)
        return result

    # -- operators -------------------------------------------------------------

    def _exec(self, node: p.PlanNode,
              n_threads: int) -> dict[str, np.ndarray]:
        """Dispatch one operator, wrapped in an ``op:<Type>`` span (rows
        out recorded) when tracing is on.

        Nodes the estimator annotated (``est_rows``) additionally get
        est-vs-actual accounting: the estimate lands on the span (the
        renderer folds it into ``rows est=… actual=…``) and the
        operator's q-error feeds ``stats.q_error`` /
        ``stats.misestimates`` — with or without tracing, so metrics
        see misestimates even on untraced production runs."""
        tracer = self._qctx.tracer
        est = node.est_rows
        if not tracer.enabled:
            columns = self._exec_node(node, n_threads)
            if est is not None:
                self._note_operator_estimate(est, _num_rows(columns))
            return columns
        with tracer.span("op:" + type(node).__name__) as span:
            columns = self._exec_node(node, n_threads)
            rows = _num_rows(columns)
            span.set(rows_out=rows)
            if est is not None:
                span.set(est_rows=est)
                self._note_operator_estimate(est, rows)
            return columns

    def _note_operator_estimate(self, est: int, actual: int) -> None:
        q = q_error(est, actual)
        metrics = self._qctx.metrics
        metrics.histogram("stats.q_error",
                          bounds=QERROR_BUCKETS).observe(q)
        if q > MISESTIMATE_THRESHOLD:
            metrics.counter("stats.misestimates").inc()

    def _exec_node(self, node: p.PlanNode,
                   n_threads: int) -> dict[str, np.ndarray]:
        self._qctx.metrics.counter("exec.operators").inc()
        if isinstance(node, p.Scan):
            table = self.db.table(node.table)
            columns = {c: table.column(c) for c in node.columns}
            self._qctx.metrics.counter("exec.rows_scanned").inc(
                _num_rows(columns))
            return columns
        if isinstance(node, p.Filter):
            return self._exec_filter(node, n_threads)
        if isinstance(node, p.Project):
            return self._exec_project(node, n_threads)
        if isinstance(node, p.Join):
            return self._exec_join(node, n_threads)
        if isinstance(node, p.GroupAggregate):
            return self._exec_group(node, n_threads)
        if isinstance(node, p.Sort):
            return self._exec_sort(node, n_threads)
        if isinstance(node, p.Limit):
            columns = self._exec(node.child, n_threads)
            return {name: array[:node.count]
                    for name, array in columns.items()}
        if isinstance(node, p.TableUDF):
            return self._exec_table_udf(node, n_threads)
        raise ExecutorError(f"unknown plan node {type(node).__name__}")

    def _exec_filter(self, node: p.Filter,
                     n_threads: int) -> dict[str, np.ndarray]:
        columns = self._exec(node.child, n_threads)
        mask = self._eval(node.predicate, columns, n_threads)
        mask = np.asarray(mask, dtype=np.bool_)
        if mask.ndim == 0:
            raise ExecutorError("filter predicate produced a scalar")
        return {name: columns[name][mask]
                for name, _ in node.output}

    def _exec_project(self, node: p.Project,
                      n_threads: int) -> dict[str, np.ndarray]:
        columns = self._exec(node.child, n_threads)
        n = _num_rows(columns)
        out: dict[str, np.ndarray] = {}
        for name, expr in node.items:
            value = self._eval(expr, columns, n_threads)
            array = np.asarray(value)
            if array.ndim == 0:
                array = np.full(n, array[()])
            out[name] = array
        return out

    def _exec_join(self, node: p.Join,
                   n_threads: int) -> dict[str, np.ndarray]:
        left = self._exec(node.left, n_threads)
        right = self._exec(node.right, n_threads)
        left_keys = self._key_value(node.left_keys, left, node.left)
        right_keys = self._key_value(node.right_keys, right, node.right)
        pair = hb.get("join_index").run(
            [left_keys, right_keys,
             Vector(ht.SYM, _sym_scalar(node.kind))], self._ctx)
        left_index = pair[0].data
        right_index = pair[1].data
        out: dict[str, np.ndarray] = {}
        left_names = set(node.left.output_names())
        for name, _ in node.output:
            if name in left_names:
                out[name] = left[name][left_index]
            else:
                out[name] = right[name][right_index]
        return out

    def _key_value(self, keys: list[str],
                   columns: dict[str, np.ndarray], node: p.PlanNode):
        vectors = [Vector(node.output_type(k), columns[k]) for k in keys]
        if len(vectors) == 1:
            return vectors[0]
        return ListValue(vectors)

    def _exec_group(self, node: p.GroupAggregate,
                    n_threads: int) -> dict[str, np.ndarray]:
        columns = self._exec(node.child, n_threads)
        out: dict[str, np.ndarray] = {}
        if not node.keys:
            for name, fn, column in node.aggregates:
                if fn == "count":
                    any_col = column or next(iter(columns))
                    out[name] = np.array([len(columns[any_col])],
                                         dtype=np.int64)
                else:
                    reducer = {"sum": np.sum, "avg": np.mean,
                               "min": np.min, "max": np.max}[fn]
                    out[name] = np.atleast_1d(
                        np.asarray(reducer(columns[column])))
            return out

        key_vectors = [Vector(node.child.output_type(k), columns[k])
                       for k in node.keys]
        grouped = hb.get("group").run(list(key_vectors), self._ctx)
        key_index = grouped[0].data
        codes = grouped[1]
        ngroups = Vector(ht.I64, np.array([len(key_index)],
                                          dtype=np.int64))
        for key in node.keys:
            out[key] = columns[key][key_index]
        for name, fn, column in node.aggregates:
            builtin = {"sum": "group_sum", "avg": "group_avg",
                       "min": "group_min", "max": "group_max",
                       "count": "group_count"}[fn]
            if fn == "count":
                values = codes
            else:
                values = Vector(node.child.output_type(column),
                                columns[column])
            result = hb.get(builtin).run([values, codes, ngroups],
                                         self._ctx)
            out[name] = result.data
        return out

    def _exec_sort(self, node: p.Sort,
                   n_threads: int) -> dict[str, np.ndarray]:
        columns = self._exec(node.child, n_threads)
        key_vectors = [Vector(node.child.output_type(name), columns[name])
                       for name, _ in node.keys]
        ascending = Vector(ht.BOOL, np.array([asc for _, asc in node.keys],
                                             dtype=np.bool_))
        keys_value = key_vectors[0] if len(key_vectors) == 1 \
            else ListValue(key_vectors)
        order = hb.get("order").run([keys_value, ascending],
                                    self._ctx).data
        return {name: array[order] for name, array in columns.items()}

    def _exec_table_udf(self, node: p.TableUDF,
                        n_threads: int) -> dict[str, np.ndarray]:
        columns = self._exec(node.child, n_threads)
        udf = self.udfs.get(node.udf_name)
        arrays = [columns[c] for c in node.input_columns]
        results = self.bridge.call_table(udf, arrays)
        return {name: array
                for (name, _), array in zip(udf.output_columns, results)}

    # -- expression evaluation -----------------------------------------------

    def _eval(self, expr: ast.Expr, columns: dict[str, np.ndarray],
              n_threads: int):
        """Vectorized, fully-materializing expression evaluation.

        Chunks across threads when the expression is UDF-free and the
        input is large; UDF-bearing expressions run single-threaded (the
        bridge is serial)."""
        if n_threads > 1 and not self._has_udf(expr):
            n = _num_rows(columns)
            if n >= _PARALLEL_MIN_ROWS:
                return self._eval_parallel(expr, columns, n, n_threads)
        return self._eval_serial(expr, columns)

    def _eval_parallel(self, expr: ast.Expr,
                       columns: dict[str, np.ndarray], n: int,
                       n_threads: int):
        chunk = max(_PARALLEL_MIN_ROWS // 2, n // (n_threads * 4))
        bounds = [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

        def run(bound):
            lo, hi = bound
            view = {name: (arr[lo:hi] if len(arr) == n else arr)
                    for name, arr in columns.items()}
            return np.asarray(self._eval_serial(expr, view))

        pool = self._qctx.executor(n_threads)
        parts = list(pool.map(run, bounds))
        return np.concatenate([np.atleast_1d(part) for part in parts])

    def _has_udf(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FuncCall):
            if self.udfs.is_udf(expr.name):
                return True
            return any(self._has_udf(a) for a in expr.args)
        if isinstance(expr, ast.BinOp):
            return self._has_udf(expr.left) or self._has_udf(expr.right)
        if isinstance(expr, ast.UnOp):
            return self._has_udf(expr.operand)
        if isinstance(expr, ast.CaseWhen):
            for cond, value in expr.whens:
                if self._has_udf(cond) or self._has_udf(value):
                    return True
            return expr.else_expr is not None \
                and self._has_udf(expr.else_expr)
        if isinstance(expr, ast.InList):
            return self._has_udf(expr.expr)
        if isinstance(expr, ast.Between):
            return self._has_udf(expr.expr)
        return False

    def _eval_serial(self, expr: ast.Expr,
                     columns: dict[str, np.ndarray]):
        if isinstance(expr, ast.Col):
            try:
                return columns[expr.name]
            except KeyError:
                raise ExecutorError(
                    f"column {expr.name!r} not available; have "
                    f"{sorted(columns)}") from None
        if isinstance(expr, ast.IntLit):
            return np.int64(expr.value)
        if isinstance(expr, ast.FloatLit):
            return np.float64(expr.value)
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.DateLit):
            return np.datetime64(expr.value, "D")
        if isinstance(expr, ast.UnOp):
            operand = self._eval_serial(expr.operand, columns)
            if expr.op == "not":
                return np.logical_not(operand)
            return np.negative(operand)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, columns)
        if isinstance(expr, ast.FuncCall):
            return self._eval_call(expr, columns)
        if isinstance(expr, ast.CaseWhen):
            if expr.else_expr is not None:
                result = self._eval_serial(expr.else_expr, columns)
            else:
                result = np.int64(0)
            for cond, value in reversed(expr.whens):
                mask = self._eval_serial(cond, columns)
                result = np.where(np.asarray(mask, dtype=np.bool_),
                                  self._eval_serial(value, columns),
                                  result)
            return result
        if isinstance(expr, ast.InList):
            value = self._eval_serial(expr.expr, columns)
            pool = [self._eval_serial(i, columns) for i in expr.items]
            value = np.asarray(value)
            if value.dtype == object:
                pool_set = set(pool)
                result = np.fromiter((v in pool_set for v in value),
                                     dtype=np.bool_, count=len(value))
            else:
                result = np.isin(value, np.asarray(pool))
            return np.logical_not(result) if expr.negated else result
        if isinstance(expr, ast.Between):
            value = self._eval_serial(expr.expr, columns)
            low = self._eval_serial(expr.low, columns)
            high = self._eval_serial(expr.high, columns)
            result = np.logical_and(value >= low, value <= high)
            return np.logical_not(result) if expr.negated else result
        raise ExecutorError(
            f"cannot evaluate expression {type(expr).__name__}")

    def _eval_binop(self, expr: ast.BinOp,
                    columns: dict[str, np.ndarray]):
        if expr.op == "like":
            values = np.asarray(self._eval_serial(expr.left, columns))
            pattern = self._eval_serial(expr.right, columns)
            from repro.core.codegen.pygen import _like
            return _like(values, pattern)
        left = self._eval_serial(expr.left, columns)
        right = self._eval_serial(expr.right, columns)
        table = {
            "+": np.add, "-": np.subtract, "*": np.multiply,
            "/": np.true_divide,
            "=": np.equal, "<>": np.not_equal,
            "<": np.less, "<=": np.less_equal,
            ">": np.greater, ">=": np.greater_equal,
            "and": np.logical_and, "or": np.logical_or,
        }
        fn = table.get(expr.op)
        if fn is None:
            raise ExecutorError(f"unknown operator {expr.op!r}")
        return fn(left, right)

    def _eval_call(self, expr: ast.FuncCall,
                   columns: dict[str, np.ndarray]):
        if self.udfs.is_scalar(expr.name):
            udf = self.udfs.get(expr.name)
            arrays = []
            n = _num_rows(columns)
            for arg in expr.args:
                value = np.asarray(self._eval_serial(arg, columns))
                if value.ndim == 0:
                    value = np.full(n, value[()])
                arrays.append(value)
            return self.bridge.call_scalar(udf, arrays)
        name = expr.name.lower()
        if name in ("sum", "avg", "min", "max", "count"):
            raise ExecutorError(
                f"aggregate {name} outside of a GroupAggregate node")
        raise ExecutorError(f"unknown function {expr.name!r}")


def _num_rows(columns: dict[str, np.ndarray]) -> int:
    for array in columns.values():
        return len(array)
    return 0


def _sym_scalar(value: str) -> np.ndarray:
    out = np.empty(1, dtype=object)
    out[0] = value
    return out

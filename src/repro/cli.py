"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run-sql``        — execute a SQL query against CSV/TPC-H tables on
  either system (``--system horsepower|monetdb``), optionally picking
  the execution engine (``--backend``), print the result;
* ``compile-sql``    — show the full provenance chain for a query: plan
  JSON, generated HorseIR (before/after optimization) and fused kernels;
* ``compile-matlab`` — translate a MATLAB file to HorseIR (and optionally
  run it on CSV columns);
* ``list-backends``  — print the registered execution backends, their
  capabilities and fallback chains;
* ``gen-tpch``       — write TPC-H tables as ``|``-separated files;
* ``analyze``        — collect table/column statistics (row counts,
  min/max, distinct counts, equi-depth histograms) and print them;
  ``run-sql --analyze`` collects the same statistics before running, and
  ``run-sql --explain`` prints the estimated plan without executing.
* ``lint``           — run the static-analysis rules (stable IDs
  H001…/P001…/M001…) over a SQL query's plan and compiled HorseIR, a
  MATLAB source file, or every built-in workload (``--workloads``);
  ``--format json`` emits the machine-readable schema.  Exits 0 when
  clean, 1 with findings, 2 on a compile/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import types as ht
from repro.errors import (GovernorError, OptimizerError,
                          PassVerificationError)

_TYPE_NAMES = {
    "bool": ht.BOOL, "i64": ht.I64, "i32": ht.I32, "f64": ht.F64,
    "f32": ht.F32, "str": ht.STR, "sym": ht.SYM, "date": ht.DATE,
}


def _parse_schema(spec: str) -> list[tuple[str, ht.HorseType]]:
    """``name:type,name:type`` → schema list."""
    schema = []
    for part in spec.split(","):
        name, _, type_name = part.partition(":")
        if type_name not in _TYPE_NAMES:
            raise SystemExit(
                f"unknown column type {type_name!r} in --table schema; "
                f"use one of {sorted(_TYPE_NAMES)}")
        schema.append((name.strip(), _TYPE_NAMES[type_name]))
    return schema


def _load_tables(args) -> "Database":
    from repro.engine.storage import Database

    db = Database()
    if args.tpch is not None:
        from repro.data.tpch import generate_tpch
        generate_tpch(scale_factor=args.tpch, db=db)
    for spec in args.table or []:
        try:
            name, path, schema_spec = spec.split("=", 1)[0], *spec.split(
                "=", 1)[1].split("@", 1)
        except ValueError:
            raise SystemExit(
                "--table expects NAME=PATH@col:type,col:type") from None
        db.load_csv(name, path, _parse_schema(schema_spec))
    return db


_BYTE_SUFFIXES = {"": 1, "k": 1 << 10, "kb": 1 << 10, "kib": 1 << 10,
                  "m": 1 << 20, "mb": 1 << 20, "mib": 1 << 20,
                  "g": 1 << 30, "gb": 1 << 30, "gib": 1 << 30}


def _parse_bytes(spec: str) -> int:
    """``--memory-budget`` values: plain bytes or ``64k``/``16MiB``."""
    text = spec.strip().lower()
    for suffix in sorted(_BYTE_SUFFIXES, key=len, reverse=True):
        if suffix and text.endswith(suffix):
            number = text[:-len(suffix)]
            break
    else:
        number, suffix = text, ""
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {spec!r} (use e.g. 1048576, 64k, "
            f"16MiB)") from None
    result = int(value * _BYTE_SUFFIXES[suffix])
    if result <= 0:
        raise argparse.ArgumentTypeError(
            f"byte size must be positive, got {spec!r}")
    return result


def _print_table(result, limit: int) -> None:
    if hasattr(result, "columns"):  # TableValue
        names = result.column_names
        arrays = [vec.data for _, vec in result.columns()]
        total = result.num_rows
    else:  # ColumnTable
        names = result.column_names
        arrays = [result.column(n) for n in names]
        total = result.num_rows
    print(" | ".join(f"{n:>18}" for n in names))
    print("-+-".join("-" * 18 for _ in names))
    for row in range(min(total, limit)):
        print(" | ".join(f"{str(a[row]):>18}" for a in arrays))
    if total > limit:
        print(f"... ({total} rows total)")


def _cmd_run_sql(args) -> int:
    from repro.horsepower import HorsePowerSystem, MonetDBLike

    backend = args.backend
    if backend is not None:
        from repro.engine.backends import default_registry
        if args.system == "monetdb":
            raise SystemExit(
                "--backend picks the HorsePower execution engine; with "
                "--system monetdb the baseline engine always runs "
                "(`--system horsepower --backend baseline` reaches it "
                "through the registry)")
        if backend not in default_registry():
            known = ", ".join(sorted(default_registry().names()))
            raise SystemExit(
                f"unknown backend {backend!r}; registered backends: "
                f"{known} (see `python -m repro list-backends`)")

    governed = (args.timeout is not None
                or args.memory_budget is not None
                or args.max_concurrent is not None)
    if governed and args.system == "monetdb":
        raise SystemExit(
            "--timeout/--memory-budget/--max-concurrent govern the "
            "HorsePower engine; the monetdb baseline runs ungoverned")
    telemetry_requested = (args.query_log is not None
                          or args.slow_query_ms is not None
                          or args.diagnostics_dir is not None
                          or args.serve_metrics is not None)
    if telemetry_requested and args.system == "monetdb":
        raise SystemExit(
            "--query-log/--slow-query-ms/--diagnostics-dir/"
            "--serve-metrics attach to the HorsePower session; the "
            "monetdb baseline runs without telemetry")
    pipeline_requested = (args.passes is not None or args.verify_ir
                          or args.dump_ir is not None)
    if pipeline_requested and args.system == "monetdb":
        raise SystemExit(
            "--passes/--verify-ir/--dump-ir drive the HorsePower "
            "compiler's pass pipeline; the monetdb baseline has no "
            "pass pipeline")
    _validate_passes(args)

    db = _load_tables(args)
    sql = args.query if args.query else sys.stdin.read()
    repeat = max(1, args.repeat)

    if args.explain:
        return _explain_plan(args, db, sql)

    tracing = bool(args.trace or args.explain_analyze)
    tracer = None
    if tracing:
        from repro.obs import Tracer, set_tracer
        tracer = Tracer()
        set_tracer(tracer)
    profile = None
    if args.profile:
        from repro.obs import AllocationProfile, set_profile
        profile = AllocationProfile()
        set_profile(profile)

    hp = None
    try:
        if args.system == "monetdb":
            mdb = MonetDBLike(db)
            if args.analyze:
                mdb.analyze()
            for _ in range(repeat):
                result = mdb.run_sql(sql, n_threads=args.threads)
        else:
            hp = HorsePowerSystem(db)
            if args.analyze:
                hp.analyze()
            if args.max_concurrent is not None:
                hp.governor.configure(max_concurrent=args.max_concurrent)
            if telemetry_requested:
                telemetry = hp.configure_telemetry(
                    query_log=args.query_log,
                    slow_query_ms=args.slow_query_ms,
                    diagnostics_dir=args.diagnostics_dir,
                    serve_metrics=args.serve_metrics)
                if telemetry.server is not None:
                    # Printed (and flushed) before the query runs so a
                    # scraper can attach mid-run.
                    print(f"-- serving Prometheus metrics at "
                          f"{telemetry.server.url} (Ctrl-C to stop)",
                          flush=True)
            use_cache = not args.no_cache
            try:
                for _ in range(repeat):
                    result = hp.run_sql(sql, n_threads=args.threads,
                                        use_cache=use_cache,
                                        backend=backend or "python",
                                        timeout=args.timeout,
                                        memory_budget=args.memory_budget,
                                        pipeline=args.passes,
                                        verify_ir=args.verify_ir,
                                        dump_ir=args.dump_ir)
            except PassVerificationError as exc:
                print(f"error: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                return 2
            except GovernorError as exc:
                print(f"error: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                if args.query_log is not None:
                    print(f"-- query-log record appended to "
                          f"{args.query_log}", file=sys.stderr)
                if args.diagnostics_dir is not None:
                    print(f"-- diagnostics bundle written under "
                          f"{args.diagnostics_dir}", file=sys.stderr)
                return 2
            if args.cache_stats:
                print(f"-- plan cache: {hp.cache_stats.summary()} "
                      f"entries={len(hp.plan_cache)}")
    finally:
        if tracing:
            from repro.obs import set_tracer
            set_tracer(None)
        if profile is not None:
            from repro.obs import set_profile
            set_profile(None)

    _print_table(result, args.limit)
    if hp is not None and args.dump_ir is not None:
        print(f"-- per-pass IR snapshots written under {args.dump_ir}")
    if tracer is not None:
        _emit_trace_outputs(args, tracer)
    if profile is not None:
        _emit_profile_output(args, profile)
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, hp)
    if hp is not None and args.query_log is not None:
        log = hp.telemetry.query_log
        print(f"-- query log: {log.emitted} record"
              f"{'' if log.emitted == 1 else 's'} appended to "
              f"{args.query_log}"
              + (f" ({log.sampled_out} sampled out)"
                 if log.sampled_out else ""))
    if hp is not None and hp.telemetry.server is not None:
        # Keep the scrape endpoint alive until the user interrupts —
        # this is what lets `curl .../metrics` observe a bench run.
        import threading
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        hp.telemetry.server.close()
    return 0


def _explain_plan(args, db, sql) -> int:
    """Classic EXPLAIN: print the (estimated) plan, don't execute."""
    from repro.horsepower import HorsePowerSystem, MonetDBLike
    from repro.obs import render_plan
    from repro.sql.parser import parse_sql
    from repro.sql.planner import plan_query

    system = (MonetDBLike(db) if args.system == "monetdb"
              else HorsePowerSystem(db))
    if args.analyze:
        system.analyze()
    stats = system.stats
    plan = plan_query(parse_sql(sql), db.catalog(), system.udfs,
                      pipeline=args.passes,
                      table_stats=stats if stats.enabled else None)
    print("-- EXPLAIN " + "-" * 52)
    print(render_plan(plan))
    if not stats.enabled:
        print("-- no statistics collected; add --analyze for est_rows")
    return 0


def _cmd_analyze(args) -> int:
    """Collect and print table/column statistics."""
    from repro.engine.session import EngineSession

    db = _load_tables(args)
    session = EngineSession.ambient(db)
    collected = session.analyze(args.table_name)
    for table_stats in collected:
        print(f"table {table_stats.name}: {table_stats.row_count} rows, "
              f"{len(table_stats.columns)} columns")
        for col in table_stats.columns.values():
            info = col.to_dict()
            print(f"    {info['name']:<16} {info['type']:<6} "
                  f"ndv={info['n_distinct']:<8} "
                  f"nulls={col.null_count:<6} "
                  f"buckets={info['histogram_buckets']:<4} "
                  f"min={info['min']} max={info['max']}")
    return 0


def _emit_trace_outputs(args, tracer) -> None:
    """Print/write the trace artifacts ``run-sql`` was asked for."""
    from repro.obs import chrome_trace_json, render_explain_analyze

    if args.explain_analyze:
        root = tracer.last_root()
        if root is not None:
            # The last root is the final repeat: warm (cache-served)
            # when --repeat > 1, the full cold chain otherwise.
            print("-- EXPLAIN ANALYZE " + "-" * 44)
            print(render_explain_analyze(root))
    if args.trace:
        with open(args.trace, "w") as handle:
            handle.write(chrome_trace_json(tracer.roots, indent=2))
        print(f"-- chrome trace written to {args.trace} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")


def _emit_profile_output(args, profile) -> None:
    """Write the allocation profile JSON and print a one-line summary."""
    from repro.obs.prof import format_bytes

    with open(args.profile, "w") as handle:
        json.dump(profile.to_dict(), handle, indent=2)
    print(f"-- allocation profile written to {args.profile} "
          f"({format_bytes(profile.bytes_allocated)} allocated, "
          f"{profile.intermediates_materialized} intermediates, "
          f"peak {format_bytes(profile.peak_bytes)})")


def _write_metrics_json(path: str, hp=None) -> None:
    """Dump the process-global metrics (plus per-entry plan-cache stats
    when the HorsePower system ran) as flat JSON."""
    from repro.obs import global_metrics

    payload = {"metrics": global_metrics().snapshot()}
    if hp is not None:
        payload["plan_cache"] = hp.cache_stats.to_dict()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(f"-- metrics written to {path}")


def _validate_passes(args) -> None:
    """Reject a bad ``--passes`` spec before any table loads."""
    if args.passes is None:
        return
    from repro.core.passes import resolve_pipeline
    try:
        resolve_pipeline(args.passes)
    except OptimizerError as exc:
        raise SystemExit(str(exc)) from exc


def _resolve_lint_rules(args) -> "tuple[str, ...] | None":
    """``--select``/``--all`` → the rule-ID tuple the drivers take."""
    from repro.core.analysis import RULES

    if args.select:
        ids = tuple(part.strip().upper()
                    for part in args.select.split(",") if part.strip())
        unknown = [rule_id for rule_id in ids if rule_id not in RULES]
        if unknown:
            raise SystemExit(
                f"unknown rule id(s) {', '.join(unknown)}; known: "
                f"{', '.join(RULES)}")
        return ids
    if args.all:
        return tuple(RULES)
    return None  # the default-on set


def _lint_sql(args, sql: str, rules) -> list:
    """Lint one query at both layers: the planned tree and the
    optimized HorseIR module."""
    from repro.core.analysis import lint_module, lint_plan
    from repro.horsepower import HorsePowerSystem
    from repro.sql.parser import parse_sql
    from repro.sql.planner import plan_query

    db = _load_tables(args)
    hp = HorsePowerSystem(db)
    stats = hp.stats
    plan = plan_query(parse_sql(sql), db.catalog(), hp.udfs,
                      pipeline=args.passes,
                      table_stats=stats if stats.enabled else None)
    findings = lint_plan(plan, rules)
    compiled = hp.compile_sql(sql, pipeline=args.passes)
    findings.extend(lint_module(compiled.program.module, rules))
    return findings


def _lint_workloads(args, rules) -> list:
    """Lint every built-in workload: all TPC-H plain/UDF queries and
    Black-Scholes variants (plan + optimized module) plus the MATLAB
    sources they compile from.  This is the CI clean-tree gate."""
    from repro.core.analysis import lint_matlab, lint_module, lint_plan
    from repro.data.blackscholes import load_blackscholes_table
    from repro.data.tpch import generate_tpch
    from repro.engine.storage import Database
    from repro.horsepower import HorsePowerSystem
    from repro.matlang.parser import parse_program
    from repro.sql.parser import parse_sql
    from repro.sql.planner import plan_query
    from repro.workloads import bs_queries, matlab_sources
    from repro.workloads.tpch_queries import (EXTENDED_PLAIN_QUERIES,
                                              PLAIN_QUERIES,
                                              UDF_QUERIES,
                                              register_tpch_udfs)

    tpch_db = generate_tpch(scale_factor=args.tpch or 0.002)
    tpch = HorsePowerSystem(tpch_db)
    register_tpch_udfs(tpch)
    bs_db = Database()
    load_blackscholes_table(bs_db, 500)
    bs = HorsePowerSystem(bs_db)
    bs_queries.register_bs_udfs(bs)

    work = [(tpch, tpch_db, f"tpch/{name}", sql) for name, sql in
            {**PLAIN_QUERIES, **EXTENDED_PLAIN_QUERIES,
             **UDF_QUERIES}.items()]
    work += [(bs, bs_db, f"bs-scalar/{name}", sql)
             for name, sql in bs_queries.SCALAR_QUERIES.items()]
    work += [(bs, bs_db, f"bs-table/{name}", sql)
             for name, sql in bs_queries.TABLE_QUERIES.items()]

    findings = []
    for system, db, tag, sql in work:
        plan = plan_query(parse_sql(sql), db.catalog(), system.udfs,
                          pipeline=args.passes)
        for finding in lint_plan(plan, rules):
            findings.append(finding._replace(
                location=f"{tag}: {finding.location}"))
        compiled = system.compile_sql(sql, pipeline=args.passes)
        for finding in lint_module(compiled.program.module, rules):
            findings.append(finding._replace(
                location=f"{tag}: {finding.location}"))
    for name in matlab_sources.__all__:
        program = parse_program(getattr(matlab_sources, name))
        for finding in lint_matlab(program, rules):
            findings.append(finding._replace(
                location=f"matlab/{name}: {finding.location}"))
    return findings


def _cmd_lint(args) -> int:
    from repro.core.analysis import lint_matlab
    from repro.errors import ReproError

    _validate_passes(args)
    rules = _resolve_lint_rules(args)
    if not (args.workloads or args.sql or args.matlab):
        raise SystemExit(
            "nothing to lint: pass --sql QUERY, --matlab FILE, or "
            "--workloads")
    findings = []
    try:
        if args.workloads:
            findings.extend(_lint_workloads(args, rules))
        if args.sql:
            findings.extend(_lint_sql(args, args.sql, rules))
        if args.matlab:
            from repro.matlang.parser import parse_program
            with open(args.matlab) as handle:
                program = parse_program(handle.read())
            findings.extend(lint_matlab(program, rules))
    except (ReproError, OSError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        from repro.core.analysis import findings_to_json
        print(json.dumps(findings_to_json(findings), indent=2))
    else:
        from repro.obs import format_lint_findings
        print(format_lint_findings(findings))
    return 1 if findings else 0


def _cmd_compile_sql(args) -> int:
    from repro.core.printer import print_module
    from repro.horsepower import HorsePowerSystem

    _validate_passes(args)
    db = _load_tables(args)
    sql = args.query if args.query else sys.stdin.read()
    hp = HorsePowerSystem(db)
    try:
        compiled = hp.compile_sql(sql, pipeline=args.passes,
                                  verify_ir=args.verify_ir,
                                  dump_ir=args.dump_ir)
    except PassVerificationError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    print("-- logical plan (JSON) " + "-" * 40)
    print(json.dumps(compiled.plan_json, indent=2))
    print("-- HorseIR before optimization " + "-" * 32)
    print(print_module(compiled.module_before_opt))
    print("-- HorseIR after optimization " + "-" * 33)
    print(print_module(compiled.program.module))
    for index, source in enumerate(compiled.kernel_sources):
        print(f"-- fused kernel {index} " + "-" * 44)
        print(source)
    stats = (compiled.report.optimize_stats
             if compiled.report is not None else None)
    if stats is not None and stats.pass_stats:
        from repro.obs import format_pass_stats
        print("-- pass statistics " + "-" * 44)
        print(format_pass_stats(stats))
    if args.dump_ir is not None:
        print(f"-- per-pass IR snapshots written under {args.dump_ir}")
    print(f"-- compile time: {compiled.compile_seconds * 1000:.1f} ms")
    return 0


def _cmd_compile_matlab(args) -> int:
    from repro.core.printer import print_module
    from repro.matlang import matlab_to_module

    with open(args.file) as handle:
        source = handle.read()
    specs = None
    if args.params:
        specs = [spec.strip() for spec in args.params.split(",")]
    module = matlab_to_module(source, specs)
    print(print_module(module))
    return 0


def _cmd_list_backends(args) -> int:
    """Print every registered execution backend with its availability,
    capability set, fallback chain, and aliases."""
    from repro.engine.backends import BackendError, default_registry

    registry = default_registry()
    for name in registry.names():
        backend = registry.get(name)
        try:
            resolved = registry.resolve(name)
        except BackendError:
            resolved = backend
        status = "available" if backend.available() else (
            f"unavailable (falls back to {resolved.name})"
            if resolved is not backend else "unavailable")
        print(f"{name}  [{status}]")
        print(f"    {backend.description}")
        print("    capabilities: "
              + ", ".join(sorted(backend.capabilities)))
        if backend.fallback is not None:
            print(f"    fallback: {backend.fallback}")
        aliases = registry.aliases(name)
        if aliases:
            print("    aliases: " + ", ".join(aliases))
    return 0


def _cmd_gen_tpch(args) -> int:
    from repro.data.tpch import generate_tpch
    import os

    db = generate_tpch(scale_factor=args.scale_factor)
    os.makedirs(args.out, exist_ok=True)
    for name in db.table_names():
        path = os.path.join(args.out, f"{name}.tbl")
        db.save_csv(name, path)
        print(f"wrote {path} ({db.table(name).num_rows} rows)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    def add_table_args(sub):
        sub.add_argument("--table", action="append", metavar=
                         "NAME=PATH@col:type,...",
                         help="load a |-separated file as a table")
        sub.add_argument("--tpch", type=float, metavar="SF",
                         help="generate TPC-H tables at this scale "
                              "factor")

    def add_pipeline_args(sub):
        sub.add_argument("--passes", metavar="SPEC",
                         help="optimization pipeline: a preset (O0, "
                              "O1, O2) or a comma-separated pass list "
                              "run once in order, e.g. "
                              "inline,constprop,dce (see docs/"
                              "compiler_pipeline.md for the inventory)")
        sub.add_argument("--verify-ir", action="store_true",
                         help="re-verify the IR after every optimizer "
                              "pass; exits 2 with the failing pass and "
                              "statement on a violation")
        sub.add_argument("--dump-ir", nargs="?", const="ir-dump",
                         metavar="DIR",
                         help="write numbered per-pass IR snapshots "
                              "(000-input.hir, ...) under DIR (default "
                              "ir-dump)")

    run_sql = commands.add_parser("run-sql",
                                  help="execute a SQL query")
    add_table_args(run_sql)
    add_pipeline_args(run_sql)
    run_sql.add_argument("query", nargs="?",
                         help="SQL text (reads stdin when omitted)")
    run_sql.add_argument("--system", choices=("horsepower", "monetdb"),
                         default="horsepower")
    run_sql.add_argument("--backend", metavar="NAME",
                         help="HorsePower execution engine (a name or "
                              "alias from `list-backends`, e.g. pygen, "
                              "c, interp, baseline); default pygen")
    run_sql.add_argument("--threads", type=int, default=1)
    run_sql.add_argument("--limit", type=int, default=20,
                         help="max rows to print")
    run_sql.add_argument("--repeat", type=int, default=1,
                         help="run the query N times (repeats hit the "
                              "prepared-query cache)")
    run_sql.add_argument("--no-cache", action="store_true",
                         help="bypass the plan cache (recompile every "
                              "run)")
    run_sql.add_argument("--cache-stats", action="store_true",
                         help="print plan-cache hit/miss/eviction "
                              "counters (horsepower system only)")
    run_sql.add_argument("--trace", nargs="?", const="trace.json",
                         metavar="PATH",
                         help="record spans and write a Chrome-trace "
                              "JSON (default trace.json; open in "
                              "chrome://tracing or Perfetto)")
    run_sql.add_argument("--profile", nargs="?", const="profile.json",
                         metavar="PATH",
                         help="charge materialized vectors to "
                              "statements/builtins/kernels and write "
                              "the allocation profile JSON (default "
                              "profile.json); with --explain-analyze, "
                              "spans gain alloc=/peak= byte columns")
    run_sql.add_argument("--analyze", action="store_true",
                         help="collect table statistics (ANALYZE) "
                              "before planning, enabling est_rows "
                              "annotations and the stats-driven "
                              "selectivity-reorder pass")
    run_sql.add_argument("--explain", action="store_true",
                         help="print the estimated logical plan "
                              "(est_rows per operator with --analyze) "
                              "and exit without executing")
    run_sql.add_argument("--explain-analyze", action="store_true",
                         help="print the traced span tree (per-phase "
                              "and per-kernel times, row counts) after "
                              "the result")
    run_sql.add_argument("--timeout", type=float, metavar="SECONDS",
                         help="cancel the query cooperatively past this "
                              "deadline (exits 2 with QueryTimeout)")
    run_sql.add_argument("--memory-budget", type=_parse_bytes,
                         metavar="BYTES",
                         help="fail the query once it materializes more "
                              "than this many bytes (accepts 64k / "
                              "16MiB suffixes; exits 2 with "
                              "MemoryBudgetExceeded)")
    run_sql.add_argument("--max-concurrent", type=int, metavar="N",
                         help="admission-control limit on concurrent "
                              "queries in this process")
    run_sql.add_argument("--metrics-json", metavar="PATH",
                         help="write runtime metrics (plan cache, pool, "
                              "kernels, rows) as flat JSON")
    run_sql.add_argument("--query-log", nargs="?",
                         const="query_log.jsonl", metavar="PATH",
                         help="append one structured JSONL record per "
                              "query (query id, SQL fingerprint, "
                              "backend, cache hit, per-phase times, "
                              "rows, governor outcome); default "
                              "query_log.jsonl")
    run_sql.add_argument("--slow-query-ms", type=float, metavar="MS",
                         help="mark (and always log) queries slower "
                              "than this wall-time threshold")
    run_sql.add_argument("--diagnostics-dir", metavar="DIR",
                         help="dump an automatic diagnostics bundle "
                              "(span tree, metrics, profile, backends, "
                              "flight records) on any governor or "
                              "runtime failure")
    run_sql.add_argument("--serve-metrics", nargs="?", const=9464,
                         type=int, metavar="PORT",
                         help="serve Prometheus-format metrics at "
                              "http://127.0.0.1:PORT/metrics (default "
                              "9464, 0 picks a free port) and keep "
                              "serving after the query until "
                              "interrupted")
    run_sql.set_defaults(fn=_cmd_run_sql)

    compile_sql = commands.add_parser(
        "compile-sql", help="show plan, HorseIR and fused kernels")
    add_table_args(compile_sql)
    add_pipeline_args(compile_sql)
    compile_sql.add_argument("query", nargs="?")
    compile_sql.set_defaults(fn=_cmd_compile_sql)

    compile_matlab = commands.add_parser(
        "compile-matlab", help="translate a MATLAB file to HorseIR")
    compile_matlab.add_argument("file")
    compile_matlab.add_argument(
        "--params", help="comma-separated entry parameter types, "
                         "e.g. f64,f64,str")
    compile_matlab.set_defaults(fn=_cmd_compile_matlab)

    list_backends = commands.add_parser(
        "list-backends",
        help="print registered execution backends and capabilities")
    list_backends.set_defaults(fn=_cmd_list_backends)

    gen_tpch = commands.add_parser("gen-tpch",
                                   help="write TPC-H .tbl files")
    gen_tpch.add_argument("--scale-factor", type=float, default=0.01)
    gen_tpch.add_argument("--out", default="tpch-data")
    gen_tpch.set_defaults(fn=_cmd_gen_tpch)

    analyze = commands.add_parser(
        "analyze",
        help="collect and print table/column statistics")
    add_table_args(analyze)
    analyze.add_argument("table_name", nargs="?",
                         help="analyze only this table (default: all)")
    analyze.set_defaults(fn=_cmd_analyze)

    lint = commands.add_parser(
        "lint",
        help="run static-analysis rules over IR, plans, and MATLAB")
    add_table_args(lint)
    lint.add_argument("--sql", metavar="QUERY",
                      help="lint this query's plan and compiled "
                           "HorseIR (needs --table/--tpch)")
    lint.add_argument("--matlab", metavar="FILE",
                      help="lint a MATLAB source file")
    lint.add_argument("--workloads", action="store_true",
                      help="lint every built-in TPC-H and "
                           "Black-Scholes workload plus the bundled "
                           "MATLAB sources (the CI clean-tree gate)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="output format (json follows the schema in "
                           "docs/analysis.md)")
    lint.add_argument("--select", metavar="IDS",
                      help="comma-separated rule IDs to run (e.g. "
                           "H001,P002), overriding the default-on set")
    lint.add_argument("--all", action="store_true",
                      help="enable every rule, including default-off "
                           "advisories (H004 fusion report, P003 "
                           "LIMIT-less sort)")
    lint.add_argument("--passes", metavar="SPEC",
                      help="optimization pipeline to compile under "
                           "(preset or comma-separated pass list)")
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""TameIR → HorseIR generator (the translator HorsePower adds to McLab).

Every TameIR statement lowers to one or a few flat HorseIR statements:

* logical indexing ``A(I)`` becomes ``@compress`` (as the paper notes);
* integer indexing becomes ``@index`` after the 1-based → 0-based shift;
* MATLAB's inclusive ranges expand to ``@range`` arithmetic;
* builtin calls map through the lowering spec in
  :mod:`repro.matlang.builtins`;
* user-function calls become HorseIR method calls (inlined later by the
  optimizer).
"""

from __future__ import annotations

from repro.core import ir
from repro.core import types as ht
from repro.errors import MatlangTypeError
from repro.matlang import tameir as t
from repro.matlang.builtins import MATLAB_BUILTINS

__all__ = ["tameir_to_module"]

_TYPE_MAP = {
    "cols": ht.list_of(ht.WILDCARD),
    "bool": ht.BOOL,
    "i64": ht.I64,
    "f64": ht.F64,
    "str": ht.STR,
    "date": ht.DATE,
}

_DIRECT_OPS = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div",
    "power": "power", "neg": "neg", "not": "not",
    "eq": "eq", "neq": "neq", "lt": "lt", "leq": "leq",
    "gt": "gt", "geq": "geq", "and": "and", "or": "or",
}

#: Epsilon used when computing inclusive range lengths, mirroring the
#: interpreter (floating ranges like 0:0.1:1 must include the endpoint).
_RANGE_EPS = 1e-10


def tameir_to_module(program: t.TProgram,
                     module_name: str = "MatlabModule") -> ir.Module:
    """Translate a typed TameIR program into a HorseIR module."""
    module = ir.Module(module_name)
    for function in program.functions:
        module.add(_translate_function(function))
    return module


def _horse_type(elem: str) -> ht.HorseType:
    try:
        return _TYPE_MAP[elem]
    except KeyError:
        raise MatlangTypeError(f"no HorseIR type for {elem!r}") from None


class _FunctionTranslator:
    def __init__(self, function: t.TFunction):
        self.function = function
        self._temp_index = 0

    def _temp(self, hint: str) -> str:
        self._temp_index += 1
        return f"_{hint}{self._temp_index}"

    def translate(self) -> ir.Method:
        params = [ir.Param(name, _horse_type(elem))
                  for name, elem, _shape in self.function.params]
        body = self._translate_body(self.function.body)
        if not body or not isinstance(body[-1], ir.Return):
            body.append(ir.Return(ir.Var(self.function.output)))
        return ir.Method(self.function.name, params,
                         _horse_type(self.function.ret_type), body)

    def _translate_body(self, body: list) -> list[ir.Stmt]:
        out: list[ir.Stmt] = []
        # Producers of unit-step ranges in this straight-line region, so
        # `A(a:b)` folds to a zero-copy @subseq instead of a gather.
        unit_ranges: dict[str, tuple[t.TAtom, t.TAtom]] = {}
        for item in body:
            if isinstance(item, t.TStmt):
                if item.op == "range" and self._is_unit_step(item):
                    unit_ranges[item.target] = (item.args[0],
                                                item.args[1])
                out.extend(self._translate_stmt(item, unit_ranges))
            elif isinstance(item, t.TReturn):
                out.append(ir.Return(ir.Var(item.var.name)))
            elif isinstance(item, t.TIf):
                out.extend(self._translate_if(item))
            elif isinstance(item, t.TWhile):
                out.extend(self._translate_while(item))
            else:
                raise MatlangTypeError(
                    f"unknown TameIR item {type(item).__name__}")
        return out

    def _translate_if(self, item: t.TIf) -> list[ir.Stmt]:
        def build(index: int) -> list[ir.Stmt]:
            if index == len(item.branches):
                return self._translate_body(item.else_body)
            prelude, cond, branch_body = item.branches[index]
            stmts = self._translate_body(prelude)
            stmts.append(ir.If(ir.Var(cond.name),
                               self._translate_body(branch_body),
                               build(index + 1)))
            return stmts
        return build(0)

    def _translate_while(self, item: t.TWhile) -> list[ir.Stmt]:
        prelude = self._translate_body(item.cond_prelude)
        loop_body = self._translate_body(item.body)
        loop_body.extend(self._translate_body(item.cond_prelude))
        stmts = list(prelude)
        stmts.append(ir.While(ir.Var(item.cond.name), loop_body))
        return stmts

    # -- statements -----------------------------------------------------------

    @staticmethod
    def _is_unit_step(stmt: t.TStmt) -> bool:
        step = stmt.args[2]
        return isinstance(step, t.TConst) and float(step.value) == 1.0

    def _translate_stmt(self, stmt: t.TStmt,
                        unit_ranges: dict | None = None) -> list[ir.Stmt]:
        out_type = _horse_type(stmt.type)
        target = stmt.target
        op = stmt.op

        if op == "copy":
            return [ir.Assign(target, out_type, self._atom(stmt.args[0]))]
        if op in _DIRECT_OPS:
            args = [self._atom(a) for a in stmt.args]
            return [ir.Assign(target, out_type,
                              ir.BuiltinCall(_DIRECT_OPS[op], args))]
        if op == "index_logical":
            base, mask = stmt.args
            return [ir.Assign(target, out_type,
                              ir.BuiltinCall("compress",
                                             [self._atom(mask),
                                              self._atom(base)]))]
        if op == "index":
            index_atom = stmt.args[1]
            if unit_ranges and isinstance(index_atom, t.TVar) \
                    and index_atom.name in unit_ranges:
                start, stop = unit_ranges[index_atom.name]
                return [ir.Assign(
                    target, out_type,
                    ir.BuiltinCall("subseq",
                                   [self._atom(stmt.args[0]),
                                    self._atom(start),
                                    self._atom(stop)]))]
            return self._translate_index(stmt, out_type)
        if op == "range":
            return self._translate_range(stmt, out_type)
        if op == "concat":
            args = [self._atom(a) for a in stmt.args]
            return [ir.Assign(target, out_type,
                              ir.BuiltinCall("concat", args))]
        if op.startswith("ucall:"):
            name = op[len("ucall:"):]
            args = [self._atom(a) for a in stmt.args]
            return [ir.Assign(target, out_type, ir.MethodCall(name, args))]
        if op.startswith("call:"):
            return self._translate_builtin(stmt, out_type)
        raise MatlangTypeError(f"unknown TameIR op {op!r}")

    def _translate_index(self, stmt: t.TStmt,
                         out_type: ht.HorseType) -> list[ir.Stmt]:
        base, index = stmt.args
        shifted = self._temp("pos")
        cast = self._temp("idx")
        return [
            ir.Assign(shifted, ht.WILDCARD,
                      ir.BuiltinCall("sub", [self._atom(index),
                                             ir.Literal(1, ht.I64)])),
            ir.Assign(cast, ht.I64,
                      ir.Cast(ir.Var(shifted), ht.I64)),
            ir.Assign(stmt.target, out_type,
                      ir.BuiltinCall("index", [self._atom(base),
                                               ir.Var(cast)])),
        ]

    def _translate_range(self, stmt: t.TStmt,
                         out_type: ht.HorseType) -> list[ir.Stmt]:
        start, stop, step = (self._atom(a) for a in stmt.args)
        span = self._temp("span")
        ratio = self._temp("ratio")
        eps = self._temp("eps")
        fl = self._temp("fl")
        count_f = self._temp("cntf")
        count = self._temp("cnt")
        raw = self._temp("iota")
        scaled = self._temp("scaled")
        return [
            ir.Assign(span, ht.WILDCARD,
                      ir.BuiltinCall("sub", [stop, start])),
            ir.Assign(ratio, ht.F64,
                      ir.BuiltinCall("div", [ir.Var(span), step])),
            ir.Assign(eps, ht.F64,
                      ir.BuiltinCall("add",
                                     [ir.Var(ratio),
                                      ir.Literal(_RANGE_EPS, ht.F64)])),
            ir.Assign(fl, ht.F64, ir.BuiltinCall("floor", [ir.Var(eps)])),
            ir.Assign(count_f, ht.F64,
                      ir.BuiltinCall("add", [ir.Var(fl),
                                             ir.Literal(1.0, ht.F64)])),
            ir.Assign(count, ht.I64, ir.Cast(ir.Var(count_f), ht.I64)),
            ir.Assign(raw, ht.I64, ir.BuiltinCall("range",
                                                  [ir.Var(count)])),
            ir.Assign(scaled, ht.WILDCARD,
                      ir.BuiltinCall("mul", [ir.Var(raw), step])),
            ir.Assign(stmt.target, out_type,
                      ir.BuiltinCall("add", [ir.Var(scaled), start])),
        ]

    def _translate_builtin(self, stmt: t.TStmt,
                           out_type: ht.HorseType) -> list[ir.Stmt]:
        name = stmt.op[len("call:"):]
        builtin = MATLAB_BUILTINS[name]
        args = [self._atom(a) for a in stmt.args]
        lower = builtin.lower

        if lower == "#length":
            return [ir.Assign(stmt.target, ht.I64,
                              ir.BuiltinCall("len", args))]
        if lower in ("#zeros", "#ones"):
            size = args[-1]
            value = 0.0 if lower == "#zeros" else 1.0
            cast = self._temp("n")
            return [
                ir.Assign(cast, ht.I64, ir.Cast(size, ht.I64)),
                ir.Assign(stmt.target, ht.F64,
                          ir.BuiltinCall("fill",
                                         [ir.Var(cast),
                                          ir.Literal(value, ht.F64)])),
            ]
        if lower in ("#min", "#max"):
            base = lower[1:]
            if len(args) == 1:
                return [ir.Assign(stmt.target, out_type,
                                  ir.BuiltinCall(base, args))]
            return [ir.Assign(stmt.target, out_type,
                              ir.BuiltinCall(f"{base}2", args))]
        if lower == "#sort":
            order = self._temp("ord")
            asc = self._temp("asc")
            return [
                ir.Assign(asc, ht.BOOL,
                          ir.BuiltinCall("concat",
                                         [ir.Literal(True, ht.BOOL)])),
                ir.Assign(order, ht.I64,
                          ir.BuiltinCall("order", [args[0],
                                                   ir.Var(asc)])),
                ir.Assign(stmt.target, out_type,
                          ir.BuiltinCall("index", [args[0],
                                                   ir.Var(order)])),
            ]
        if lower == "#find":
            # MATLAB's find() treats any nonzero value as true.
            mask = self._temp("mask")
            zeros = self._temp("pos")
            return [
                ir.Assign(mask, ht.BOOL,
                          ir.BuiltinCall("neq",
                                         [args[0],
                                          ir.Literal(0, ht.I64)])),
                ir.Assign(zeros, ht.I64,
                          ir.BuiltinCall("where", [ir.Var(mask)])),
                ir.Assign(stmt.target, out_type,
                          ir.BuiltinCall("add",
                                         [ir.Var(zeros),
                                          ir.Literal(1, ht.I64)])),
            ]
        if lower in ("#var", "#std"):
            mean = self._temp("mu")
            dev = self._temp("dev")
            sq = self._temp("sq")
            total = self._temp("ss")
            count = self._temp("n")
            dof = self._temp("dof")
            out: list[ir.Stmt] = [
                ir.Assign(mean, ht.F64, ir.BuiltinCall("avg", [args[0]])),
                ir.Assign(dev, ht.F64,
                          ir.BuiltinCall("sub", [args[0],
                                                 ir.Var(mean)])),
                ir.Assign(sq, ht.F64,
                          ir.BuiltinCall("mul", [ir.Var(dev),
                                                 ir.Var(dev)])),
                ir.Assign(total, ht.F64,
                          ir.BuiltinCall("sum", [ir.Var(sq)])),
                ir.Assign(count, ht.I64,
                          ir.BuiltinCall("len", [args[0]])),
                ir.Assign(dof, ht.I64,
                          ir.BuiltinCall("sub", [ir.Var(count),
                                                 ir.Literal(1, ht.I64)])),
            ]
            if lower == "#var":
                out.append(ir.Assign(stmt.target, out_type,
                                     ir.BuiltinCall("div",
                                                    [ir.Var(total),
                                                     ir.Var(dof)])))
            else:
                ratio = self._temp("ratio")
                out.append(ir.Assign(ratio, ht.F64,
                                     ir.BuiltinCall("div",
                                                    [ir.Var(total),
                                                     ir.Var(dof)])))
                out.append(ir.Assign(stmt.target, out_type,
                                     ir.BuiltinCall("sqrt",
                                                    [ir.Var(ratio)])))
            return out
        if lower == "#dot":
            product = self._temp("prodv")
            return [
                ir.Assign(product, ht.F64,
                          ir.BuiltinCall("mul", [args[0], args[1]])),
                ir.Assign(stmt.target, out_type,
                          ir.BuiltinCall("sum", [ir.Var(product)])),
            ]
        if lower == "#isempty":
            length = self._temp("len")
            return [
                ir.Assign(length, ht.I64,
                          ir.BuiltinCall("len", [args[0]])),
                ir.Assign(stmt.target, ht.BOOL,
                          ir.BuiltinCall("eq", [ir.Var(length),
                                                ir.Literal(0, ht.I64)])),
            ]
        if lower == "#table":
            return [ir.Assign(stmt.target, ht.list_of(ht.WILDCARD),
                              ir.BuiltinCall("list", args))]
        if lower == "#strcmp":
            return [ir.Assign(stmt.target, ht.BOOL,
                              ir.BuiltinCall("eq", args))]
        if lower.startswith("#"):
            raise MatlangTypeError(
                f"builtin {name} has no HorseIR lowering")
        return [ir.Assign(stmt.target, out_type,
                          ir.BuiltinCall(lower, args))]

    @staticmethod
    def _atom(atom: t.TAtom) -> ir.Expr:
        if isinstance(atom, t.TVar):
            return ir.Var(atom.name)
        assert isinstance(atom, t.TConst)
        type_ = _horse_type(atom.type)
        return ir.Literal(atom.value, type_)


def _translate_function(function: t.TFunction) -> ir.Method:
    return _FunctionTranslator(function).translate()

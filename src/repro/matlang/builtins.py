"""The MATLAB-subset builtin library.

One registry shared by the interpreter (NumPy evaluation), the Tamer
(type/shape inference) and the HorseIR generator (lowering spec).  The set
covers what the paper's benchmarks need: elementwise math, reductions,
scans, vector constructors, and the string predicates the TPC-H UDFs use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MatlangRuntimeError, MatlangTypeError

__all__ = ["MatBuiltin", "MATLAB_BUILTINS", "is_builtin"]


@dataclass(frozen=True)
class MatBuiltin:
    """One MATLAB builtin: evaluation + inference + lowering metadata."""

    name: str
    min_args: int
    max_args: int
    #: NumPy implementation; receives numpy arrays / python scalars.
    run: Callable
    #: result type rule: "same" (first arg's element type), "f64", "bool",
    #: "i64", or "str".
    result_type: str
    #: result shape rule: "same" (first arg), "scalar", "vector".
    result_shape: str
    #: HorseIR lowering: builtin name for the 1:1 case, or a marker the
    #: generator special-cases ("#zeros", "#ones", "#length", "#minmax",
    #: "#mod", "#strcmp", ...).
    lower: str


def _check_args(name: str, args: list, low: int, high: int) -> None:
    if not (low <= len(args) <= high):
        expected = str(low) if low == high else f"{low}..{high}"
        raise MatlangRuntimeError(
            f"{name} expects {expected} argument(s), got {len(args)}")


def _as_length(value) -> float:
    array = np.asarray(value)
    return float(array.size)


def _zeros(*args):
    if len(args) == 1:
        n = int(np.asarray(args[0]).reshape(-1)[0])
    else:
        rows = int(np.asarray(args[0]).reshape(-1)[0])
        if rows != 1:
            raise MatlangRuntimeError(
                "only 1-by-N vectors are supported (zeros(1, n))")
        n = int(np.asarray(args[1]).reshape(-1)[0])
    return np.zeros(n, dtype=np.float64)


def _ones(*args):
    return _zeros(*args) + 1.0


def _minmax(reducer, pair):
    def apply(*args):
        if len(args) == 1:
            data = np.asarray(args[0])
            if data.size == 0:
                raise MatlangRuntimeError("min/max of an empty vector")
            return reducer(data)
        return pair(np.asarray(args[0]), np.asarray(args[1]))
    return apply


def _strcmp(a, b):
    left = np.asarray(a, dtype=object).reshape(-1)
    right = np.asarray(b, dtype=object).reshape(-1)
    if len(left) == 1 and len(right) > 1:
        left, right = right, left
    if len(right) == 1:
        target = right[0]
        return np.fromiter((v == target for v in left), dtype=np.bool_,
                           count=len(left))
    return np.fromiter((x == y for x, y in zip(left, right)),
                       dtype=np.bool_, count=len(left))


def _starts_with(values, prefix):
    values = np.asarray(values, dtype=object).reshape(-1)
    prefix = np.asarray(prefix, dtype=object).reshape(-1)[0]
    return np.fromiter((v.startswith(prefix) for v in values),
                       dtype=np.bool_, count=len(values))


def _ismember(values, pool):
    values = np.asarray(values).reshape(-1)
    pool_set = set(np.asarray(pool).reshape(-1).tolist())
    return np.fromiter((v in pool_set for v in values), dtype=np.bool_,
                       count=len(values))


MATLAB_BUILTINS: dict[str, MatBuiltin] = {}


def _register(name: str, min_args: int, max_args: int, run, result_type: str,
              result_shape: str, lower: str) -> None:
    MATLAB_BUILTINS[name] = MatBuiltin(name, min_args, max_args, run,
                                       result_type, result_shape, lower)


_register("abs", 1, 1, np.abs, "same", "same", "abs")
_register("exp", 1, 1, np.exp, "f64", "same", "exp")
_register("log", 1, 1, np.log, "f64", "same", "log")
_register("sqrt", 1, 1, np.sqrt, "f64", "same", "sqrt")
_register("sign", 1, 1, np.sign, "same", "same", "sign")
_register("floor", 1, 1, np.floor, "same", "same", "floor")
_register("ceil", 1, 1, np.ceil, "same", "same", "ceil")
_register("round", 1, 1, np.round, "same", "same", "round")
_register("mod", 2, 2, np.mod, "same", "same", "mod")

_register("sum", 1, 1, np.sum, "f64", "scalar", "sum")
_register("mean", 1, 1, np.mean, "f64", "scalar", "avg")
_register("cumsum", 1, 1, np.cumsum, "f64", "same", "cumsum")
_register("any", 1, 1, np.any, "bool", "scalar", "any")
_register("all", 1, 1, np.all, "bool", "scalar", "all")
_register("min", 1, 2, _minmax(np.min, np.minimum), "same", "#minmax",
          "#min")
_register("max", 1, 2, _minmax(np.max, np.maximum), "same", "#minmax",
          "#max")

_register("length", 1, 1, _as_length, "f64", "scalar", "#length")
_register("numel", 1, 1, _as_length, "f64", "scalar", "#length")
_register("zeros", 1, 2, _zeros, "f64", "vector", "#zeros")
_register("ones", 1, 2, _ones, "f64", "vector", "#ones")

_register("strcmp", 2, 2, _strcmp, "bool", "#broadcast", "#strcmp")
_register("startsWith", 2, 2, _starts_with, "bool", "same", "startswith")
_register("ismember", 2, 2, _ismember, "bool", "same", "member")


def is_builtin(name: str) -> bool:
    return name in MATLAB_BUILTINS


def infer_result_type(builtin: MatBuiltin, arg_types: list[str]) -> str:
    """Element-type inference over the small matlang lattice
    (``f64``/``bool``/``str``)."""
    if builtin.result_type == "same":
        if not arg_types:
            raise MatlangTypeError(f"{builtin.name} with no arguments")
        return arg_types[0]
    return builtin.result_type


def _table_builtin(*args):
    """MATLAB ``table(col1, col2, ...)`` — bundles columns for a table
    UDF's return value.  The interpreter returns a plain list of arrays."""
    return [np.atleast_1d(np.asarray(a)) for a in args]


_register("table", 1, 16, _table_builtin, "cols", "vector", "#table")


# -- extended library (beyond the paper's minimum subset) --------------------

def _sort(values):
    return np.sort(np.asarray(values, dtype=np.float64).reshape(-1))


def _find(values):
    """1-based indices of nonzero elements (MATLAB semantics)."""
    return (np.nonzero(np.asarray(values).reshape(-1))[0]
            + 1).astype(np.float64)


def _var(values):
    data = np.asarray(values, dtype=np.float64).reshape(-1)
    if data.size < 2:
        raise MatlangRuntimeError("var needs at least two elements")
    return float(np.var(data, ddof=1))


def _std(values):
    return float(np.sqrt(_var(values)))


def _dot(a, b):
    return float(np.dot(np.asarray(a, dtype=np.float64).reshape(-1),
                        np.asarray(b, dtype=np.float64).reshape(-1)))


def _isempty(values):
    return np.asarray(values).size == 0


_register("prod", 1, 1, np.prod, "f64", "scalar", "prod")
_register("sort", 1, 1, _sort, "same", "vector", "#sort")
_register("find", 1, 1, _find, "f64", "vector", "#find")
_register("var", 1, 1, _var, "f64", "scalar", "#var")
_register("std", 1, 1, _std, "f64", "scalar", "#std")
_register("dot", 2, 2, _dot, "f64", "scalar", "#dot")
_register("fliplr", 1, 1, lambda v: np.asarray(v).reshape(-1)[::-1],
          "same", "same", "reverse")
_register("isempty", 1, 1, _isempty, "bool", "scalar", "#isempty")

"""The Tamer: MATLAB AST → typed TameIR (paper Section 3.2).

Replicates the analysis order the paper describes: "the first set of type
and shape information is derived from the parameters of the entry MATLAB
function.  This information is then used to derive the type and shape
information for any further variables computed by the statements in the
rest of the program."

* call-vs-index ambiguity is resolved with the variable environment and
  the known-function sets;
* user functions are specialized per argument signature (monomorphic
  instantiation), so one MATLAB helper can serve differently-typed calls;
* ``while`` bodies are inferred twice so loop-carried variables reach a
  type fixpoint (the lattice height is 2, so twice suffices).
"""

from __future__ import annotations

from repro.errors import MatlangTypeError
from repro.matlang import ast
from repro.matlang import tameir as t
from repro.matlang.builtins import MATLAB_BUILTINS, infer_result_type
from repro.matlang.parser import parse_program

__all__ = ["tame_program", "tame_source", "ParamSpec",
           "find_shadowed_builtins", "find_unreachable_statements"]

#: (element type, shape) pair describing one entry-function parameter.
ParamSpec = tuple  # ("f64", "vector") etc.


def tame_source(source: str,
                param_specs: list[ParamSpec] | None = None) -> t.TProgram:
    """Parse MATLAB source and run the Tamer on it."""
    return tame_program(parse_program(source), param_specs)


def tame_program(program: ast.Program,
                 param_specs: list[ParamSpec] | None = None) -> t.TProgram:
    """Type the whole program starting from the entry function.

    ``param_specs`` gives (type, shape) for each entry parameter; vectors
    of ``f64`` are assumed when omitted — the common case for columns.
    """
    entry = program.entry
    if param_specs is None:
        param_specs = [("f64", "vector")] * len(entry.params)
    if len(param_specs) != len(entry.params):
        raise MatlangTypeError(
            f"entry function {entry.name!r} has {len(entry.params)} "
            f"parameter(s) but {len(param_specs)} spec(s) were given")
    tamer = _Tamer(program)
    tamer.instantiate(entry.name, list(param_specs), plain_name=True)
    # Callees finish taming before their callers, so reorder: the entry
    # function must come first (it defines TProgram.entry / Module.entry).
    ordered = sorted(tamer.results,
                     key=lambda fn: 0 if fn.name == entry.name else 1)
    return t.TProgram(ordered)


class _Tamer:
    def __init__(self, program: ast.Program):
        self.program = program
        self._functions = {fn.name: fn for fn in program.functions}
        self._instantiating: set[str] = set()
        self._instantiated: dict[str, t.TFunction] = {}
        self.results: list[t.TFunction] = []
        self._temp_index = 0
        self._current_output: str | None = None

    # -- function instantiation ----------------------------------------------

    def instantiate(self, name: str, param_specs: list[ParamSpec],
                    plain_name: bool = False) -> t.TFunction:
        key = name if plain_name else self._signature(name, param_specs)
        cached = self._instantiated.get(key)
        if cached is not None:
            return cached
        if name in self._instantiating:
            raise MatlangTypeError(
                f"recursive function {name!r} is unsupported")
        fn = self._functions[name]
        if len(param_specs) != len(fn.params):
            raise MatlangTypeError(
                f"{name} called with {len(param_specs)} argument(s), "
                f"expects {len(fn.params)}")
        self._instantiating.add(name)
        try:
            typed = self._tame_function(fn, param_specs, key)
        finally:
            self._instantiating.discard(name)
        self._instantiated[key] = typed
        self.results.append(typed)
        return typed

    def _signature(self, name: str, param_specs: list[ParamSpec]) -> str:
        parts = [f"{elem}_{shape}" for elem, shape in param_specs]
        if not parts:
            return name
        return name + "__" + "__".join(parts)

    def _tame_function(self, fn: ast.Function,
                       param_specs: list[ParamSpec],
                       typed_name: str) -> t.TFunction:
        env: dict[str, ParamSpec] = {
            param: spec for param, spec in zip(fn.params, param_specs)
        }
        previous_output = self._current_output
        self._current_output = fn.output
        try:
            body = self._tame_body(fn.body, env)
        finally:
            self._current_output = previous_output
        if fn.output not in env:
            raise MatlangTypeError(
                f"{fn.name} never assigns its output {fn.output!r}")
        body.append(t.TReturn(t.TVar(fn.output)))
        out_type, out_shape = env[fn.output]
        params = [(param, spec[0], spec[1])
                  for param, spec in zip(fn.params, param_specs)]
        return t.TFunction(typed_name, params, fn.output, body,
                           out_type, out_shape)

    # -- statements -----------------------------------------------------------

    def _tame_body(self, body: list[ast.Stmt],
                   env: dict[str, ParamSpec]) -> list:
        out: list = []
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                atom = self._flatten(stmt.expr, env, out,
                                     target_hint=stmt.target)
                self._bind(stmt.target, atom, env, out)
            elif isinstance(stmt, ast.Return):
                # Early return: exits with the current output value, which
                # must already be assigned on this path.
                output = self._current_output
                if output not in env:
                    raise MatlangTypeError(
                        "return before the output variable "
                        f"{output!r} is assigned")
                out.append(t.TReturn(t.TVar(output)))
            elif isinstance(stmt, ast.If):
                out.append(self._tame_if(stmt, env))
            elif isinstance(stmt, ast.While):
                out.append(self._tame_while(stmt, env))
            else:
                raise MatlangTypeError(
                    f"unknown statement {type(stmt).__name__}")
        return out

    def _bind(self, target: str, atom: t.TAtom,
              env: dict[str, ParamSpec], out: list) -> None:
        if isinstance(atom, t.TConst):
            spec = (atom.type, "scalar")
            out.append(t.TStmt(target, "copy", [atom], *spec))
        else:
            assert isinstance(atom, t.TVar)
            spec = self._spec_of(atom, env)
            if atom.name != target:
                out.append(t.TStmt(target, "copy", [atom], *spec))
        env[target] = spec

    def _tame_if(self, stmt: ast.If, env: dict[str, ParamSpec]) -> t.TIf:
        branches = []
        branch_envs = []
        for cond, body in stmt.branches:
            prelude: list = []
            cond_atom = self._flatten(cond, env, prelude)
            cond_var = self._as_var(cond_atom, env, prelude)
            branch_env = dict(env)
            branches.append((prelude, cond_var,
                             self._tame_body(body, branch_env)))
            branch_envs.append(branch_env)
        else_env = dict(env)
        else_body = self._tame_body(stmt.else_body, else_env)
        branch_envs.append(else_env)
        self._merge_envs(env, branch_envs)
        return t.TIf(branches, else_body)

    def _tame_while(self, stmt: ast.While,
                    env: dict[str, ParamSpec]) -> t.TWhile:
        # Two rounds so loop-carried variables reach their fixpoint type.
        for _ in range(2):
            probe_env = dict(env)
            prelude: list = []
            cond_atom = self._flatten(stmt.cond, probe_env, prelude)
            cond_var = self._as_var(cond_atom, probe_env, prelude)
            body_env = dict(probe_env)
            body = self._tame_body(stmt.body, body_env)
            self._merge_envs(env, [body_env, probe_env])
        # Final pass with stabilized types produces the emitted IR.
        prelude = []
        cond_atom = self._flatten(stmt.cond, env, prelude)
        cond_var = self._as_var(cond_atom, env, prelude)
        body_env = dict(env)
        body = self._tame_body(stmt.body, body_env)
        for name, spec in body_env.items():
            env[name] = spec if name not in env \
                else self._merge_spec(env[name], spec)
        return t.TWhile(prelude, cond_var, body)

    def _merge_envs(self, env: dict[str, ParamSpec],
                    branch_envs: list[dict[str, ParamSpec]]) -> None:
        names: set[str] = set()
        for branch_env in branch_envs:
            names |= set(branch_env)
        for name in names:
            specs = [be[name] for be in branch_envs if name in be]
            if name in env:
                specs.append(env[name])
            merged = specs[0]
            for spec in specs[1:]:
                merged = self._merge_spec(merged, spec)
            env[name] = merged

    @staticmethod
    def _merge_spec(a: ParamSpec, b: ParamSpec) -> ParamSpec:
        return (t.unify_types(a[0], b[0]), t.unify_shapes(a[1], b[1]))

    # -- expressions ------------------------------------------------------------

    def _temp(self, hint: str = "tmp") -> str:
        self._temp_index += 1
        return f"{hint}_{self._temp_index}"

    def _spec_of(self, atom: t.TAtom, env: dict[str, ParamSpec]) -> ParamSpec:
        if isinstance(atom, t.TConst):
            return (atom.type, "scalar")
        spec = env.get(atom.name)
        if spec is None:
            raise MatlangTypeError(f"undefined variable {atom.name!r}")
        return spec

    def _as_var(self, atom: t.TAtom, env: dict[str, ParamSpec],
                out: list) -> t.TVar:
        if isinstance(atom, t.TVar):
            return atom
        name = self._temp("cond")
        spec = (atom.type, "scalar")
        out.append(t.TStmt(name, "copy", [atom], *spec))
        env[name] = spec
        return t.TVar(name)

    def _emit(self, op: str, args: list[t.TAtom], type_: str, shape: str,
              env: dict[str, ParamSpec], out: list,
              hint: str = "tmp") -> t.TVar:
        name = self._temp(hint)
        out.append(t.TStmt(name, op, args, type_, shape))
        env[name] = (type_, shape)
        return t.TVar(name)

    _BINOP_NAMES = {
        "+": "add", "-": "sub", ".*": "mul", "*": "mul",
        "./": "div", "/": "div", ".^": "power", "^": "power",
        "==": "eq", "~=": "neq", "<": "lt", "<=": "leq",
        ">": "gt", ">=": "geq", "&": "and", "|": "or",
    }
    _COMPARISONS = ("eq", "neq", "lt", "leq", "gt", "geq")
    _LOGICAL = ("and", "or")

    def _flatten(self, expr: ast.Expr, env: dict[str, ParamSpec],
                 out: list, target_hint: str = "tmp",
                 end_var: t.TVar | None = None) -> t.TAtom:
        if isinstance(expr, ast.Num):
            if expr.is_integer:
                return t.TConst(int(expr.value), "i64")
            return t.TConst(expr.value, "f64")
        if isinstance(expr, ast.Str):
            return t.TConst(expr.value, "str")
        if isinstance(expr, ast.Bool):
            return t.TConst(expr.value, "bool")
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise MatlangTypeError(
                    f"undefined variable {expr.name!r}")
            return t.TVar(expr.name)
        if isinstance(expr, ast.EndRef):
            if end_var is None:
                raise MatlangTypeError("'end' outside of indexing")
            return end_var
        if isinstance(expr, ast.UnOp):
            operand = self._flatten(expr.operand, env, out, end_var=end_var)
            spec = self._spec_of(operand, env)
            if expr.op == "-":
                return self._emit("neg", [operand], spec[0], spec[1],
                                  env, out)
            return self._emit("not", [operand], "bool", spec[1], env, out)
        if isinstance(expr, ast.BinOp):
            return self._flatten_binop(expr, env, out, end_var)
        if isinstance(expr, ast.Range):
            return self._flatten_range(expr, env, out, end_var)
        if isinstance(expr, ast.ArrayLit):
            atoms = [self._flatten(item, env, out, end_var=end_var)
                     for item in expr.items]
            if not atoms:
                raise MatlangTypeError("empty array literals unsupported")
            elem = self._spec_of(atoms[0], env)[0]
            for atom in atoms[1:]:
                elem = t.unify_types(elem, self._spec_of(atom, env)[0])
            return self._emit("concat", atoms, elem, "vector", env, out)
        if isinstance(expr, ast.Call):
            return self._flatten_call(expr, env, out, target_hint)
        raise MatlangTypeError(
            f"unknown expression {type(expr).__name__}")

    def _flatten_binop(self, expr: ast.BinOp, env: dict[str, ParamSpec],
                       out: list, end_var: t.TVar | None) -> t.TAtom:
        op = self._BINOP_NAMES.get(expr.op)
        if op is None:
            raise MatlangTypeError(f"unsupported operator {expr.op!r}")
        left = self._flatten(expr.left, env, out, end_var=end_var)
        right = self._flatten(expr.right, env, out, end_var=end_var)
        left_spec = self._spec_of(left, env)
        right_spec = self._spec_of(right, env)
        shape = t.unify_shapes(left_spec[1], right_spec[1])
        if expr.op in ("*", "/") and left_spec[1] == "vector" \
                and right_spec[1] == "vector":
            raise MatlangTypeError(
                f"vector {expr.op} vector is matrix algebra; "
                f"use .{expr.op} for elementwise operations")
        if op in self._COMPARISONS or op in self._LOGICAL:
            type_ = "bool"
            if op in ("lt", "leq", "gt", "geq") \
                    and "str" in (left_spec[0], right_spec[0]):
                raise MatlangTypeError(
                    "strings have no ordering in the subset; "
                    "use strcmp for equality tests")
            if op in self._COMPARISONS:
                # Validate comparability.
                t.unify_types(*self._comparable(left_spec[0],
                                                right_spec[0]))
        elif op == "div":
            type_ = "f64"
            t.unify_types(left_spec[0], right_spec[0])
        elif op == "power":
            type_ = "f64"
            t.unify_types(left_spec[0], right_spec[0])
        else:
            type_ = t.unify_types(left_spec[0], right_spec[0])
        return self._emit(op, [left, right], type_, shape, env, out)

    @staticmethod
    def _comparable(a: str, b: str) -> tuple[str, str]:
        if "str" in (a, b) and a != b:
            raise MatlangTypeError(
                f"cannot compare {a} with {b}; use strcmp for strings")
        if a == "str":
            return ("i64", "i64")  # strings compare with eq/neq only
        return (a, b)

    def _flatten_range(self, expr: ast.Range, env: dict[str, ParamSpec],
                       out: list, end_var: t.TVar | None) -> t.TAtom:
        start = self._flatten(expr.start, env, out, end_var=end_var)
        stop = self._flatten(expr.stop, env, out, end_var=end_var)
        if expr.step is not None:
            step = self._flatten(expr.step, env, out, end_var=end_var)
        else:
            step = t.TConst(1, "i64")
        specs = [self._spec_of(a, env) for a in (start, stop, step)]
        for spec in specs:
            if spec[1] != "scalar":
                raise MatlangTypeError("range bounds must be scalars")
        elem = "i64"
        for spec in specs:
            elem = t.unify_types(elem, spec[0])
        return self._emit("range", [start, stop, step], elem, "vector",
                          env, out)

    def _flatten_call(self, expr: ast.Call, env: dict[str, ParamSpec],
                      out: list, target_hint: str) -> t.TAtom:
        if expr.name in env:
            return self._flatten_index(expr, env, out)
        if expr.name in self._functions:
            atoms = [self._flatten(a, env, out) for a in expr.args]
            specs = [self._spec_of(a, env) for a in atoms]
            callee = self.instantiate(expr.name, specs)
            return self._emit(f"ucall:{callee.name}", atoms,
                              callee.ret_type, callee.ret_shape, env, out,
                              hint=target_hint)
        builtin = MATLAB_BUILTINS.get(expr.name)
        if builtin is not None:
            if not (builtin.min_args <= len(expr.args)
                    <= builtin.max_args):
                raise MatlangTypeError(
                    f"{expr.name} expects {builtin.min_args}.."
                    f"{builtin.max_args} argument(s), "
                    f"got {len(expr.args)}")
            atoms = [self._flatten(a, env, out) for a in expr.args]
            specs = [self._spec_of(a, env) for a in atoms]
            type_ = infer_result_type(builtin, [s[0] for s in specs])
            shape = self._builtin_shape(builtin, specs)
            if builtin.lower == "#length":
                type_ = "i64"
            return self._emit(f"call:{expr.name}", atoms, type_, shape,
                              env, out)
        raise MatlangTypeError(
            f"{expr.name!r} is neither a variable nor a known function")

    @staticmethod
    def _builtin_shape(builtin, specs: list[ParamSpec]) -> str:
        rule = builtin.result_shape
        if rule == "same":
            return specs[0][1] if specs else "vector"
        if rule in ("#minmax", "#broadcast"):
            if len(specs) == 1 and rule == "#minmax":
                return "scalar"
            shape = "scalar"
            for spec in specs:
                shape = t.unify_shapes(shape, spec[1])
            return shape
        return rule

    def _flatten_index(self, expr: ast.Call, env: dict[str, ParamSpec],
                       out: list) -> t.TAtom:
        if len(expr.args) != 1:
            raise MatlangTypeError(
                "only one-dimensional indexing A(I) is supported")
        base = t.TVar(expr.name)
        base_spec = self._spec_of(base, env)
        end_var = self._emit("call:length", [base], "i64", "scalar",
                             env, out)
        index = self._flatten(expr.args[0], env, out, end_var=end_var)
        index_spec = self._spec_of(index, env)
        if index_spec[0] == "bool":
            return self._emit("index_logical", [base, index],
                              base_spec[0], "vector", env, out)
        return self._emit("index", [base, index], base_spec[0],
                          index_spec[1], env, out)


# ---------------------------------------------------------------------------
# MATLAB source lint detectors (consumed by repro.core.analysis.lint)
# ---------------------------------------------------------------------------

def find_shadowed_builtins(program: ast.Program) -> list[tuple]:
    """``(function, message)`` for every parameter or assignment target
    whose name is a registered MATLAB builtin.

    Shadowing is silently load-bearing in the tamer: once a name is in
    the environment, ``_flatten_call`` resolves ``name(...)`` as
    *indexing*, so ``sum = 3; sum(x)`` indexes the scalar instead of
    reducing ``x`` — legal MATLAB, but almost always a mistake."""
    findings = []
    for function in program.functions:
        reported: set[str] = set()
        for name in function.params:
            if name in MATLAB_BUILTINS and name not in reported:
                reported.add(name)
                findings.append(
                    (function.name,
                     f"parameter {name!r} shadows the builtin "
                     f"{name!r}: calls to {name}(...) become indexing"))
        for target in _assigned_names(function.body):
            if target in MATLAB_BUILTINS and target not in reported:
                reported.add(target)
                findings.append(
                    (function.name,
                     f"variable {target!r} shadows the builtin "
                     f"{target!r}: calls to {target}(...) become "
                     f"indexing"))
    return findings


def _assigned_names(body: list[ast.Stmt]):
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            yield stmt.target
        elif isinstance(stmt, ast.If):
            for _, branch in stmt.branches:
                yield from _assigned_names(branch)
            yield from _assigned_names(stmt.else_body)
        elif isinstance(stmt, ast.While):
            yield from _assigned_names(stmt.body)


def find_unreachable_statements(program: ast.Program) -> list[tuple]:
    """``(function, message)`` for statements after a ``return`` in the
    same block — they can never execute."""
    findings = []
    for function in program.functions:
        _unreachable_in(function.body, function.name, findings)
    return findings


def _unreachable_in(body: list[ast.Stmt], function: str,
                    findings: list) -> None:
    for index, stmt in enumerate(body):
        if isinstance(stmt, ast.Return) and index + 1 < len(body):
            trailing = len(body) - index - 1
            findings.append(
                (function,
                 f"{trailing} statement(s) after return can never "
                 f"execute"))
            break
        if isinstance(stmt, ast.If):
            for _, branch in stmt.branches:
                _unreachable_in(branch, function, findings)
            _unreachable_in(stmt.else_body, function, findings)
        elif isinstance(stmt, ast.While):
            _unreachable_in(stmt.body, function, findings)

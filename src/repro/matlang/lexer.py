"""Lexer for the MATLAB subset.

Newlines are significant (they terminate statements), so they are emitted
as ``NEWLINE`` tokens; ``...`` continues a line.  ``%`` starts a comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import MatlangSyntaxError

__all__ = ["Token", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<CONT>\.\.\.[^\n]*\n)
  | (?P<COMMENT>%[^\n]*)
  | (?P<NEWLINE>\n)
  | (?P<WS>[ \t\r]+)
  | (?P<NUMBER>\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)
  | (?P<STRING>'(?:[^'\n]|'')*')
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>\.\*|\./|\.\^|==|~=|<=|>=|&&|\|\||[-+*/^<>=&|~:;,()\[\]])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"function", "if", "elseif", "else", "while", "end", "return",
             "true", "false", "for"}


@dataclass
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    if not source.endswith("\n"):
        source += "\n"
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise MatlangSyntaxError(
                f"unexpected character {source[pos]!r}",
                line, pos - line_start + 1)
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            if tokens and tokens[-1].kind != "NEWLINE":
                tokens.append(Token("NEWLINE", "\n", line, column))
        elif kind == "ID" and text in _KEYWORDS:
            tokens.append(Token(text.upper(), text, line, column))
        elif kind not in ("WS", "COMMENT", "CONT"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        pos = match.end()
    if tokens and tokens[-1].kind != "NEWLINE":
        tokens.append(Token("NEWLINE", "\n", line, 1))
    tokens.append(Token("EOF", "", line, 1))
    return tokens

"""``matlang`` — the MATLAB-subset frontend (paper Section 3.2).

The reproduction of the McLab pipeline in Figure 5:

* :mod:`.lexer` / :mod:`.parser` / :mod:`.ast` — parse MATLAB source
  written in the array-programming style the paper supports (functions,
  ``if``/``elseif``/``else``, ``while``, logical & numeric indexing,
  ranges, concatenation, the vector builtin library — no ``for`` loops);
* :mod:`.interp` — a tree-walking evaluator over NumPy arrays, the
  stand-in for the MATLAB interpreter baseline in Table 1;
* :mod:`.tamer` — Tamer-style type and shape inference seeded from the
  entry function's parameter types, producing typed three-address
  **TameIR** (:mod:`.tameir`);
* :mod:`.to_horseir` — the TameIR→HorseIR generator HorsePower adds to
  the McLab framework.

The high-level entry point is :func:`compile_matlab`.
"""

from repro.matlang.frontend import compile_matlab, matlab_to_module  # noqa: F401

__all__ = ["compile_matlab", "matlab_to_module"]

"""AST for the MATLAB subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Program", "Function", "Stmt", "Assign", "If", "While", "Return",
    "Expr", "Num", "Str", "Bool", "VarRef", "Call", "BinOp", "UnOp",
    "Range", "ArrayLit", "EndRef",
]


class Expr:
    """Base class for MATLAB expressions."""


@dataclass
class Num(Expr):
    value: float
    #: True when the literal was written without a decimal point.
    is_integer: bool = False

    def __str__(self) -> str:
        if self.is_integer:
            return str(int(self.value))
        return repr(self.value)


@dataclass
class Str(Expr):
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class Bool(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class VarRef(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Call(Expr):
    """``name(args...)`` — a function call *or* array indexing.

    MATLAB's grammar cannot distinguish the two; the Tamer resolves each
    occurrence using the set of known functions and in-scope variables.
    """

    name: str
    args: list[Expr]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass
class BinOp(Expr):
    """Binary operation; ``op`` is the MATLAB spelling (``.*``, ``<=``,
    ``&``...)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnOp(Expr):
    op: str  # "-" or "~"
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class Range(Expr):
    """``start:stop`` or ``start:step:stop`` (inclusive, like MATLAB)."""

    start: Expr
    stop: Expr
    step: Expr | None = None

    def __str__(self) -> str:
        if self.step is None:
            return f"{self.start}:{self.stop}"
        return f"{self.start}:{self.step}:{self.stop}"


@dataclass
class ArrayLit(Expr):
    """``[a, b, c]`` — row-vector concatenation of elements/vectors."""

    items: list[Expr]

    def __str__(self) -> str:
        return f"[{', '.join(str(i) for i in self.items)}]"


@dataclass
class EndRef(Expr):
    """The ``end`` keyword inside an indexing expression."""

    def __str__(self) -> str:
        return "end"


class Stmt:
    """Base class for MATLAB statements."""


@dataclass
class Assign(Stmt):
    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr};"


@dataclass
class If(Stmt):
    """``if``/``elseif``*/``else`` — branches is a list of (cond, body)."""

    branches: list[tuple[Expr, list[Stmt]]]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    """Bare ``return``: exit with the current value of the output variable."""


@dataclass
class Function:
    """``function out = name(params...) ... end``.

    Only single-output functions are supported, matching the paper's UDF
    restriction (one return value per function).
    """

    name: str
    params: list[str]
    output: str
    body: list[Stmt]


@dataclass
class Program:
    """An ordered set of functions; the first is the entry function."""

    functions: list[Function]

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    @property
    def entry(self) -> Function:
        return self.functions[0]

"""TameIR: the typed three-address IR between MATLAB and HorseIR.

Mirrors McLab's TameIR role (paper Figure 5): after the Tamer resolves
MATLAB's dynamic types and call/index ambiguity, the program is a flat
sequence of typed statements that the HorseIR generator can translate
one-for-one.

Element types form a small lattice: ``bool < i64 < f64``, plus ``str`` and
``date`` (dates arrive from SQL as day-resolution values and behave like
``i64`` in arithmetic).  Shapes are ``scalar`` or ``vector``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MatlangTypeError

__all__ = [
    "TAtom", "TVar", "TConst", "TStmt", "TIf", "TWhile", "TReturn",
    "TFunction", "TProgram", "unify_types", "unify_shapes",
]

_NUMERIC_ORDER = ("bool", "i64", "f64")
ELEMENT_TYPES = ("bool", "i64", "f64", "str", "date", "cols")


def unify_types(a: str, b: str) -> str:
    """Least upper bound of two element types."""
    if a == b:
        return a
    if a in _NUMERIC_ORDER and b in _NUMERIC_ORDER:
        return _NUMERIC_ORDER[max(_NUMERIC_ORDER.index(a),
                                  _NUMERIC_ORDER.index(b))]
    if {a, b} == {"date", "i64"}:
        return "i64"
    raise MatlangTypeError(f"cannot unify types {a} and {b}")


def unify_shapes(a: str, b: str) -> str:
    """Broadcast rule: scalar disappears into vector."""
    if a == b:
        return a
    return "vector"


class TAtom:
    """Operands of TameIR statements: variables or constants."""


@dataclass
class TVar(TAtom):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class TConst(TAtom):
    value: object
    type: str  # element type

    def __str__(self) -> str:
        if self.type == "str":
            return f"'{self.value}'"
        return str(self.value)


@dataclass
class TStmt:
    """``target = op(args)`` with inferred element type and shape.

    ``op`` values: ``copy``, the binary/unary operator names (``add``,
    ``mul``, ``leq``, ``neg``, ``not``, ...), ``index`` (1-based numeric),
    ``index_logical``, ``range`` (inclusive, args start/stop/step),
    ``concat``, ``call:<builtin>`` and ``ucall:<function>``.
    """

    target: str
    op: str
    args: list[TAtom]
    type: str
    shape: str

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return (f"{self.target}:{self.type}/{self.shape} = "
                f"{self.op}({args})")


@dataclass
class TIf:
    """Lowered if/elseif/else: each branch is (condition prelude,
    condition variable, body)."""

    branches: list[tuple[list, TVar, list]]
    else_body: list = field(default_factory=list)


@dataclass
class TWhile:
    """``while``: the condition prelude re-executes before every test."""

    cond_prelude: list
    cond: TVar
    body: list = field(default_factory=list)


@dataclass
class TReturn:
    var: TVar


@dataclass
class TFunction:
    name: str
    #: (name, element type, shape) triples.
    params: list[tuple[str, str, str]]
    output: str
    body: list
    ret_type: str = "f64"
    ret_shape: str = "vector"


@dataclass
class TProgram:
    functions: list[TFunction]

    def function(self, name: str) -> TFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    @property
    def entry(self) -> TFunction:
        return self.functions[0]

"""Recursive-descent parser for the MATLAB subset.

Grammar notes:

* statements are newline/semicolon terminated;
* ``for`` is rejected with a pointed message — the paper's subset supports
  "MATLAB programs in an array programming style without using the
  for-loop construct";
* ``end`` is a block terminator at statement level and the last-index
  marker inside parentheses (``A(2:end)``); the parser tracks parenthesis
  depth to disambiguate;
* only single-output functions are accepted (the paper's UDF rule).
"""

from __future__ import annotations

from repro.errors import MatlangSyntaxError
from repro.matlang import ast
from repro.matlang.lexer import Token, tokenize

__all__ = ["parse_program"]


def parse_program(source: str) -> ast.Program:
    """Parse one or more MATLAB functions; the first is the entry."""
    return _Parser(source).parse_program()


class _Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0
        self._paren_depth = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise MatlangSyntaxError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column)
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._current.kind in ("NEWLINE",) \
                or self._check("OP", ";") or self._check("OP", ","):
            self._advance()

    def _end_of_stmt(self) -> None:
        token = self._current
        if token.kind in ("NEWLINE", "EOF") or self._check("OP", ";") \
                or self._check("OP", ","):
            self._skip_newlines()
            return
        raise MatlangSyntaxError(
            f"expected end of statement, found {token.text!r}",
            token.line, token.column)

    # -- program / functions ------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: list[ast.Function] = []
        self._skip_newlines()
        while not self._check("EOF"):
            functions.append(self._parse_function())
            self._skip_newlines()
        if not functions:
            raise MatlangSyntaxError("no functions found")
        return ast.Program(functions)

    def _parse_function(self) -> ast.Function:
        self._expect("FUNCTION")
        if self._check("OP", "["):
            token = self._current
            raise MatlangSyntaxError(
                "multiple output values are unsupported; UDFs must return "
                "a single value", token.line, token.column)
        output = self._expect("ID").text
        self._expect("OP", "=")
        name = self._expect("ID").text
        params: list[str] = []
        self._expect("OP", "(")
        if not self._check("OP", ")"):
            while True:
                params.append(self._expect("ID").text)
                if not self._accept("OP", ","):
                    break
        self._expect("OP", ")")
        self._skip_newlines()
        body = self._parse_body()
        self._accept("END")
        self._skip_newlines()
        return ast.Function(name, params, output, body)

    def _parse_body(self) -> list[ast.Stmt]:
        """Statements until END / ELSEIF / ELSE / FUNCTION / EOF."""
        body: list[ast.Stmt] = []
        self._skip_newlines()
        while self._current.kind not in ("END", "ELSEIF", "ELSE",
                                         "FUNCTION", "EOF"):
            body.append(self._parse_stmt())
            self._skip_newlines()
        return body

    # -- statements ----------------------------------------------------------

    def _parse_stmt(self) -> ast.Stmt:
        token = self._current
        if token.kind == "FOR":
            raise MatlangSyntaxError(
                "for loops are unsupported; write array operations instead "
                "(the supported subset is vectorized MATLAB)",
                token.line, token.column)
        if self._accept("RETURN"):
            self._end_of_stmt()
            return ast.Return()
        if self._accept("IF"):
            return self._parse_if()
        if self._accept("WHILE"):
            cond = self._parse_expr()
            self._end_of_stmt()
            body = self._parse_body()
            self._expect("END")
            self._end_of_stmt()
            return ast.While(cond, body)
        target = self._expect("ID").text
        self._expect("OP", "=")
        expr = self._parse_expr()
        self._end_of_stmt()
        return ast.Assign(target, expr)

    def _parse_if(self) -> ast.If:
        branches: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self._parse_expr()
        self._end_of_stmt()
        branches.append((cond, self._parse_body()))
        else_body: list[ast.Stmt] = []
        while self._accept("ELSEIF"):
            cond = self._parse_expr()
            self._end_of_stmt()
            branches.append((cond, self._parse_body()))
        if self._accept("ELSE"):
            self._skip_newlines()
            else_body = self._parse_body()
        self._expect("END")
        self._end_of_stmt()
        return ast.If(branches, else_body)

    # -- expressions (precedence climbing) ------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check("OP", "||") or self._check("OP", "|"):
            op = self._advance().text
            right = self._parse_and()
            left = ast.BinOp("|" if op == "||" else op, left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check("OP", "&&") or self._check("OP", "&"):
            op = self._advance().text
            right = self._parse_not()
            left = ast.BinOp("&" if op == "&&" else op, left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check("OP", "~"):
            self._advance()
            return ast.UnOp("~", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        while self._current.kind == "OP" \
                and self._current.text in ("==", "~=", "<", "<=", ">", ">="):
            op = self._advance().text
            right = self._parse_range()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self._check("OP", ":"):
            self._advance()
            middle = self._parse_additive()
            if self._accept("OP", ":"):
                stop = self._parse_additive()
                return ast.Range(left, stop, step=middle)
            return ast.Range(left, middle)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.kind == "OP" and self._current.text in ("+", "-"):
            op = self._advance().text
            right = self._parse_multiplicative()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._current.kind == "OP" \
                and self._current.text in ("*", "/", ".*", "./"):
            op = self._advance().text
            right = self._parse_unary()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check("OP", "-"):
            self._advance()
            return ast.UnOp("-", self._parse_unary())
        if self._check("OP", "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        left = self._parse_postfix()
        if self._current.kind == "OP" and self._current.text in ("^", ".^"):
            op = self._advance().text
            # Exponentiation is right-associative.
            right = self._parse_unary()
            return ast.BinOp(op, left, right)
        return left

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._check("OP", "(") and isinstance(expr, ast.VarRef):
            expr = ast.Call(expr.name, self._parse_call_args())
        return expr

    def _parse_call_args(self) -> list[ast.Expr]:
        self._expect("OP", "(")
        self._paren_depth += 1
        args: list[ast.Expr] = []
        if not self._check("OP", ")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept("OP", ","):
                    break
        self._paren_depth -= 1
        self._expect("OP", ")")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            return ast.Num(float(token.text),
                           is_integer="." not in token.text
                           and "e" not in token.text.lower())
        if token.kind == "STRING":
            self._advance()
            return ast.Str(token.text[1:-1].replace("''", "'"))
        if token.kind == "TRUE":
            self._advance()
            return ast.Bool(True)
        if token.kind == "FALSE":
            self._advance()
            return ast.Bool(False)
        if token.kind == "END":
            if self._paren_depth == 0:
                raise MatlangSyntaxError(
                    "'end' outside of an indexing expression",
                    token.line, token.column)
            self._advance()
            return ast.EndRef()
        if token.kind == "ID":
            self._advance()
            return ast.VarRef(token.text)
        if self._accept("OP", "("):
            self._paren_depth += 1
            expr = self._parse_expr()
            self._paren_depth -= 1
            self._expect("OP", ")")
            return expr
        if self._check("OP", "["):
            return self._parse_array_literal()
        raise MatlangSyntaxError(f"unexpected token {token.text!r}",
                                 token.line, token.column)

    def _parse_array_literal(self) -> ast.Expr:
        self._expect("OP", "[")
        self._paren_depth += 1
        items: list[ast.Expr] = []
        while not self._check("OP", "]"):
            items.append(self._parse_expr())
            self._accept("OP", ",")
            if self._check("NEWLINE"):
                token = self._current
                raise MatlangSyntaxError(
                    "matrix literals (multiple rows) are unsupported; "
                    "the subset covers 1-by-N row vectors",
                    token.line, token.column)
        self._paren_depth -= 1
        self._expect("OP", "]")
        return ast.ArrayLit(items)

"""High-level entry points: MATLAB source → HorseIR → executable.

``compile_matlab`` is the full Figure-5 pipeline: parse → Tamer → TameIR →
HorseIR → HorsePower compiler, returning a :class:`MatlabProgram` that can
run at either optimization level.
"""

from __future__ import annotations

import numpy as np

from repro.core import types as ht
from repro.core import ir
from repro.core.compiler import CompiledProgram, compile_module
from repro.core.values import Value, Vector, from_numpy
from repro.errors import MatlangTypeError
from repro.matlang.parser import parse_program
from repro.matlang.tamer import tame_program
from repro.matlang.to_horseir import tameir_to_module

__all__ = ["compile_matlab", "matlab_to_module", "MatlabProgram"]

_ELEMENT_NAMES = {"bool", "i64", "f64", "str", "date"}


def _normalize_specs(param_specs) -> list[tuple[str, str]] | None:
    if param_specs is None:
        return None
    normalized: list[tuple[str, str]] = []
    for spec in param_specs:
        if isinstance(spec, str):
            spec = (spec, "vector")
        elem, shape = spec
        if isinstance(elem, ht.HorseType):
            elem = elem.kind
        if elem not in _ELEMENT_NAMES:
            raise MatlangTypeError(f"unknown parameter type {elem!r}")
        if shape not in ("scalar", "vector"):
            raise MatlangTypeError(f"unknown parameter shape {shape!r}")
        normalized.append((elem, shape))
    return normalized


def matlab_to_module(source: str, param_specs=None,
                     module_name: str = "MatlabModule") -> ir.Module:
    """Translate MATLAB source to a HorseIR module (no compilation).

    ``param_specs`` types the entry function's parameters: a list of
    element-type names (``"f64"``), or (type, shape) pairs where shape is
    ``"scalar"`` or ``"vector"``.  Defaults to all-``f64`` vectors.
    """
    program = parse_program(source)
    tamed = tame_program(program, _normalize_specs(param_specs))
    return tameir_to_module(tamed, module_name=module_name)


class MatlabProgram:
    """A compiled MATLAB program with a NumPy-friendly call interface.

    ``ctx`` pins the :class:`~repro.core.context.QueryContext` runs
    report into (a session's context when compiled through
    :meth:`EngineSession.compile_matlab`); ``None`` keeps the ambient
    process context, resolved per call."""

    def __init__(self, module: ir.Module, compiled: CompiledProgram,
                 ctx=None):
        self.module = module
        self.compiled = compiled
        self._ctx = ctx

    @property
    def report(self):
        return self.compiled.report

    def __call__(self, *args, n_threads: int = 1, **run_kwargs):
        """Run the entry function on NumPy arrays / Python scalars;
        returns a NumPy array (or scalar for 1-element results)."""
        values = [_to_value(a) for a in args]
        if self._ctx is not None:
            run_kwargs.setdefault("ctx", self._ctx)
        result = self.compiled.run(args=values, n_threads=n_threads,
                                   **run_kwargs)
        if isinstance(result, Vector):
            if len(result) == 1:
                return result.item()
            return result.data
        return result


def _to_value(arg) -> Value:
    if isinstance(arg, Value):
        return arg
    array = np.asarray(arg)
    if array.dtype.kind in ("U", "S", "O"):
        return from_numpy(np.atleast_1d(array).astype(object))
    if array.ndim == 0:
        array = array.reshape(1)
    return from_numpy(array)


def compile_matlab(source: str, param_specs=None,
                   opt_level: str = "opt",
                   module_name: str = "MatlabModule",
                   backend: str = "python") -> MatlabProgram:
    """Compile MATLAB source end-to-end (parse → Tamer → HorseIR →
    kernels).  ``backend="c"`` selects the emitted-C (gcc + OpenMP)
    engine for eligible fused segments."""
    module = matlab_to_module(source, param_specs, module_name=module_name)
    compiled = compile_module(module, opt_level, backend=backend)
    return MatlabProgram(module, compiled)

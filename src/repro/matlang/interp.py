"""Tree-walking interpreter for the MATLAB subset.

The Table 1 baseline: executes array programs the way the MATLAB
interpreter does for these benchmarks — one eager, vectorized library call
per operation, materializing every intermediate array.  Values are NumPy
1-D arrays (row vectors) or Python scalars.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatlangRuntimeError
from repro.matlang import ast
from repro.matlang.builtins import MATLAB_BUILTINS, _check_args
from repro.matlang.parser import parse_program

__all__ = ["MatlabInterpreter", "run_matlab"]

_MAX_LOOP_ITERATIONS = 100_000_000

_BINOPS = {
    "+": np.add, "-": np.subtract, ".*": np.multiply,
    "./": np.true_divide, ".^": np.power, "^": np.power,
    "==": np.equal, "~=": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
    "&": np.logical_and, "|": np.logical_or,
}


class _ReturnSignal(Exception):
    pass


def _apply_binop(op: str, left, right):
    if op in ("*", "/"):
        # Matrix operators: legal in the subset only when at least one
        # operand is scalar (then identical to .*, ./).
        if np.asarray(left).size > 1 and np.asarray(right).size > 1:
            raise MatlangRuntimeError(
                f"vector {op} vector is matrix algebra; use .{op} for "
                f"elementwise operations")
        op = "." + op
    fn = _BINOPS.get(op)
    if fn is None:
        raise MatlangRuntimeError(f"unsupported operator {op!r}")
    return fn(left, right)


def _scalar(value) -> float:
    array = np.asarray(value)
    if array.size != 1:
        raise MatlangRuntimeError("expected a scalar value")
    return float(array.reshape(-1)[0])


def _make_range(start: float, stop: float, step: float) -> np.ndarray:
    if step == 0:
        raise MatlangRuntimeError("range step must be nonzero")
    # MATLAB ranges include the endpoint when reachable.
    count = int(np.floor((stop - start) / step + 1e-10)) + 1
    if count <= 0:
        return np.empty(0, dtype=np.float64)
    return start + step * np.arange(count, dtype=np.float64)


class MatlabInterpreter:
    """Evaluates a parsed program; the entry function is the first one."""

    def __init__(self, program: ast.Program):
        self.program = program
        self._functions = {fn.name: fn for fn in program.functions}

    def run(self, *args, function: str | None = None):
        """Call the entry function (or ``function``) with NumPy inputs."""
        name = function if function is not None else self.program.entry.name
        fn = self._functions.get(name)
        if fn is None:
            raise MatlangRuntimeError(f"unknown function {name!r}")
        return self._call(fn, list(args))

    # -- internals ----------------------------------------------------------

    def _call(self, fn: ast.Function, args: list):
        if len(args) != len(fn.params):
            raise MatlangRuntimeError(
                f"{fn.name} expects {len(fn.params)} argument(s), "
                f"got {len(args)}")
        env = dict(zip(fn.params, args))
        try:
            self._exec_body(fn.body, env)
        except _ReturnSignal:
            pass
        if fn.output not in env:
            raise MatlangRuntimeError(
                f"{fn.name} finished without assigning its output "
                f"{fn.output!r}")
        return env[fn.output]

    def _exec_body(self, body: list[ast.Stmt], env: dict) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                env[stmt.target] = self._eval(stmt.expr, env)
            elif isinstance(stmt, ast.Return):
                raise _ReturnSignal()
            elif isinstance(stmt, ast.If):
                for cond, branch in stmt.branches:
                    if self._truth(cond, env):
                        self._exec_body(branch, env)
                        break
                else:
                    self._exec_body(stmt.else_body, env)
            elif isinstance(stmt, ast.While):
                iterations = 0
                while self._truth(stmt.cond, env):
                    self._exec_body(stmt.body, env)
                    iterations += 1
                    if iterations > _MAX_LOOP_ITERATIONS:
                        raise MatlangRuntimeError(
                            "while loop exceeded the iteration limit")
            else:
                raise MatlangRuntimeError(
                    f"unknown statement {type(stmt).__name__}")

    def _truth(self, cond: ast.Expr, env: dict) -> bool:
        value = np.asarray(self._eval(cond, env))
        if value.size != 1:
            raise MatlangRuntimeError(
                "conditions must be scalar in the supported subset")
        return bool(value.reshape(-1)[0])

    def _eval(self, expr: ast.Expr, env: dict):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Str):
            return expr.value
        if isinstance(expr, ast.Bool):
            return expr.value
        if isinstance(expr, ast.VarRef):
            try:
                return env[expr.name]
            except KeyError:
                raise MatlangRuntimeError(
                    f"undefined variable {expr.name!r}") from None
        if isinstance(expr, ast.UnOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return np.negative(value)
            return np.logical_not(value)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, ast.Range):
            start = _scalar(self._eval(expr.start, env))
            stop = _scalar(self._eval(expr.stop, env))
            step = 1.0
            if expr.step is not None:
                step = _scalar(self._eval(expr.step, env))
            return _make_range(start, stop, step)
        if isinstance(expr, ast.ArrayLit):
            parts = [np.atleast_1d(np.asarray(self._eval(item, env),
                                              dtype=np.float64))
                     for item in expr.items]
            if not parts:
                return np.empty(0, dtype=np.float64)
            return np.concatenate(parts)
        if isinstance(expr, ast.Call):
            return self._call_or_index(expr, env)
        if isinstance(expr, ast.EndRef):
            raise MatlangRuntimeError("'end' outside of indexing")
        raise MatlangRuntimeError(
            f"unknown expression {type(expr).__name__}")

    def _call_or_index(self, expr: ast.Call, env: dict):
        if expr.name in env:
            return self._index(expr, env)
        user_fn = self._functions.get(expr.name)
        if user_fn is not None:
            args = [self._eval(a, env) for a in expr.args]
            return self._call(user_fn, args)
        builtin = MATLAB_BUILTINS.get(expr.name)
        if builtin is not None:
            args = [self._eval(a, env) for a in expr.args]
            _check_args(expr.name, args, builtin.min_args, builtin.max_args)
            return builtin.run(*args)
        raise MatlangRuntimeError(
            f"{expr.name!r} is neither a variable nor a known function")

    def _index(self, expr: ast.Call, env: dict):
        base = np.atleast_1d(np.asarray(env[expr.name]))
        if len(expr.args) != 1:
            raise MatlangRuntimeError(
                "only one-dimensional indexing A(I) is supported")
        index = self._eval_index(expr.args[0], env, len(base))
        if isinstance(index, np.ndarray) and index.dtype == np.bool_:
            if len(index) != len(base):
                raise MatlangRuntimeError(
                    "logical index length must match the array")
            return base[index]
        positions = np.atleast_1d(np.asarray(index))
        as_int = positions.astype(np.int64)
        if np.any(as_int < 1) or np.any(as_int > len(base)):
            raise MatlangRuntimeError(
                f"index out of bounds for {expr.name!r} "
                f"(length {len(base)})")
        return base[as_int - 1]

    def _eval_index(self, expr: ast.Expr, env: dict, end_value: int):
        """Evaluate an index expression, resolving ``end`` to the array
        length."""
        if isinstance(expr, ast.EndRef):
            return float(end_value)
        if isinstance(expr, ast.Range):
            start = _scalar(self._eval_index(expr.start, env, end_value))
            stop = _scalar(self._eval_index(expr.stop, env, end_value))
            step = 1.0
            if expr.step is not None:
                step = _scalar(self._eval_index(expr.step, env, end_value))
            return _make_range(start, stop, step)
        if isinstance(expr, ast.BinOp):
            left = self._eval_index(expr.left, env, end_value)
            right = self._eval_index(expr.right, env, end_value)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, ast.UnOp):
            value = self._eval_index(expr.operand, env, end_value)
            if expr.op == "-":
                return np.negative(value)
            return np.logical_not(value)
        return self._eval(expr, env)


def run_matlab(source: str, *args, function: str | None = None):
    """Parse and execute MATLAB source with the given inputs."""
    return MatlabInterpreter(parse_program(source)).run(
        *args, function=function)

"""Workload data generators: TPC-H dbgen subset, Black-Scholes inputs,
Morgan market-data series."""

from repro.data.blackscholes import (  # noqa: F401
    calc_option_price, generate_blackscholes, load_blackscholes_table,
)
from repro.data.morgan import generate_morgan, morgan_reference  # noqa: F401
from repro.data.tpch import generate_tpch  # noqa: F401

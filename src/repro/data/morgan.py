"""Morgan workload: market-data generator + NumPy reference.

The Morgan algorithm (Ching & Zheng's array-oriented finance kernel) has
no public source; per DESIGN.md we substitute a moving-sum based
trading-signal kernel with the structural properties the paper relies on:
a main function plus an ``msum`` helper, a ``cumsum`` scan, wide
elementwise sections, and several locals — so naive execution
materializes many intermediates and fusion has the same opportunities the
paper measures.

The kernel computes an ``n``-period volume-weighted average price (VWAP),
the price deviation from it, a clipped z-score signal, and folds the
signal-weighted deviation to a scalar.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_morgan", "morgan_reference", "msum_reference"]


def msum_reference(x: np.ndarray, n: int) -> np.ndarray:
    """Moving window sum over ``n`` elements (length ``len(x) - n + 1``)."""
    c = np.cumsum(x)
    return c[n - 1:] - np.concatenate(([0.0], c[:-n]))


def morgan_reference(n: int, price: np.ndarray,
                     volume: np.ndarray) -> float:
    """Vectorized NumPy reference of the Morgan kernel."""
    price = np.asarray(price, dtype=np.float64)
    volume = np.asarray(volume, dtype=np.float64)
    pv = price * volume
    s1 = msum_reference(pv, n)
    s2 = msum_reference(volume, n)
    vwap = s1 / s2
    tail = price[n - 1:]
    dev = tail - vwap
    scale = np.sqrt(np.mean(dev * dev))
    z = dev / scale
    signal = np.sign(z) * np.minimum(np.abs(z), 3.0)
    return float(np.sum(signal * dev))


def generate_morgan(size: int, seed: int = 11) -> tuple[np.ndarray,
                                                        np.ndarray]:
    """A random-walk price series and a lognormal volume series."""
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, 0.5, size)
    price = 100.0 + np.cumsum(steps)
    price = np.maximum(price, 1.0)
    volume = np.exp(rng.normal(8.0, 0.5, size))
    return price, volume

"""TPC-H data generator (dbgen subset).

Generates all eight TPC-H tables with the value domains and cardinalities
of the specification (scaled by ``scale_factor``): at SF 1, ``lineitem``
holds ≈6 M rows.  Distributions follow the spec closely enough that the
evaluation queries keep their standard selectivities (e.g. q6 selects
≈2 % of lineitem; q14's one-month shipdate window selects ≈1.3 %).

Strings are object arrays, dates are ``datetime64[D]``, money columns are
plain f64 (the paper's HorseIR also treats decimals as doubles).
"""

from __future__ import annotations

import numpy as np

from repro.engine.storage import Database

__all__ = ["generate_tpch", "TPCH_TABLE_NAMES"]

TPCH_TABLE_NAMES = ("region", "nation", "supplier", "customer", "part",
                    "partsupp", "orders", "lineitem")

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                    "PROMO"]
_TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                    "BRUSHED"]
_TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINER_1 = ["SM", "MED", "LG", "JUMBO", "WRAP"]
_CONTAINER_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                      "TAKE BACK RETURN"]

_START_DATE = np.datetime64("1992-01-01", "D")
_CURRENT_DATE = np.datetime64("1995-06-17", "D")
_END_DATE = np.datetime64("1998-12-01", "D")


def _strings(values) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        out[index] = str(value)
    return out


def _choice_strings(rng, pool: list[str], n: int) -> np.ndarray:
    picks = rng.integers(0, len(pool), n)
    out = np.empty(n, dtype=object)
    for index, pick in enumerate(picks):
        out[index] = pool[pick]
    return out


def generate_tpch(scale_factor: float = 0.01, seed: int = 20210215,
                  db: Database | None = None,
                  tables: tuple[str, ...] = TPCH_TABLE_NAMES) -> Database:
    """Populate (or create) a database with TPC-H tables at
    ``scale_factor``."""
    rng = np.random.default_rng(seed)
    database = db if db is not None else Database()
    generators = {
        "region": _gen_region,
        "nation": _gen_nation,
        "supplier": _gen_supplier,
        "customer": _gen_customer,
        "part": _gen_part,
        "partsupp": _gen_partsupp,
        "orders": _gen_orders,
        "lineitem": _gen_lineitem,
    }
    state: dict = {"sf": scale_factor}
    for name in TPCH_TABLE_NAMES:
        if name not in tables:
            # Some generators feed later ones (orders -> lineitem); run
            # them anyway but skip registration.
            if name in ("orders",) and "lineitem" in tables:
                generators[name](rng, state, database, register=False)
            continue
        generators[name](rng, state, database, register=True)
    return database


def _register(db: Database, register: bool, name: str, columns: dict,
              types: dict | None = None):
    if register:
        db.create_table(name, columns, types)


def _gen_region(rng, state, db, register=True):
    _register(db, register, "region", {
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": _strings(_REGIONS),
        "r_comment": _strings([f"region comment {i}" for i in range(5)]),
    })


def _gen_nation(rng, state, db, register=True):
    _register(db, register, "nation", {
        "n_nationkey": np.arange(len(_NATIONS), dtype=np.int64),
        "n_name": _strings([name for name, _ in _NATIONS]),
        "n_regionkey": np.array([region for _, region in _NATIONS],
                                dtype=np.int64),
        "n_comment": _strings([f"nation comment {i}"
                               for i in range(len(_NATIONS))]),
    })


def _gen_supplier(rng, state, db, register=True):
    n = max(1, int(10_000 * state["sf"]))
    state["n_supplier"] = n
    _register(db, register, "supplier", {
        "s_suppkey": np.arange(1, n + 1, dtype=np.int64),
        "s_name": _strings([f"Supplier#{i:09d}" for i in range(1, n + 1)]),
        "s_address": _strings([f"address {i}" for i in range(n)]),
        "s_nationkey": rng.integers(0, len(_NATIONS), n).astype(np.int64),
        "s_phone": _strings([f"{rng.integers(10, 35)}-"
                             f"{i % 1000:03d}-{i % 10000:04d}"
                             for i in range(n)]),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
        "s_comment": _strings([f"supplier comment {i}" for i in range(n)]),
    })


def _gen_customer(rng, state, db, register=True):
    n = max(1, int(150_000 * state["sf"]))
    state["n_customer"] = n
    _register(db, register, "customer", {
        "c_custkey": np.arange(1, n + 1, dtype=np.int64),
        "c_name": _strings([f"Customer#{i:09d}"
                            for i in range(1, n + 1)]),
        "c_address": _strings([f"address {i}" for i in range(n)]),
        "c_nationkey": rng.integers(0, len(_NATIONS), n).astype(np.int64),
        "c_phone": _strings([f"{rng.integers(10, 35)}-"
                             f"{i % 1000:03d}-{i % 10000:04d}"
                             for i in range(n)]),
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n), 2),
        "c_mktsegment": _choice_strings(rng, _SEGMENTS, n),
        "c_comment": _strings([f"customer comment {i}"
                               for i in range(n)]),
    })


def _gen_part(rng, state, db, register=True):
    n = max(1, int(200_000 * state["sf"]))
    state["n_part"] = n
    brand_m = rng.integers(1, 6, n)
    brand_n = rng.integers(1, 6, n)
    brands = np.empty(n, dtype=object)
    for index in range(n):
        brands[index] = f"Brand#{brand_m[index]}{brand_n[index]}"
    s1 = rng.integers(0, len(_TYPE_SYLLABLE_1), n)
    s2 = rng.integers(0, len(_TYPE_SYLLABLE_2), n)
    s3 = rng.integers(0, len(_TYPE_SYLLABLE_3), n)
    types = np.empty(n, dtype=object)
    for index in range(n):
        types[index] = (f"{_TYPE_SYLLABLE_1[s1[index]]} "
                        f"{_TYPE_SYLLABLE_2[s2[index]]} "
                        f"{_TYPE_SYLLABLE_3[s3[index]]}")
    c1 = rng.integers(0, len(_CONTAINER_1), n)
    c2 = rng.integers(0, len(_CONTAINER_2), n)
    containers = np.empty(n, dtype=object)
    for index in range(n):
        containers[index] = (f"{_CONTAINER_1[c1[index]]} "
                             f"{_CONTAINER_2[c2[index]]}")
    _register(db, register, "part", {
        "p_partkey": np.arange(1, n + 1, dtype=np.int64),
        "p_name": _strings([f"part name {i}" for i in range(n)]),
        "p_mfgr": _strings([f"Manufacturer#{1 + i % 5}"
                            for i in range(n)]),
        "p_brand": brands,
        "p_type": types,
        "p_size": rng.integers(1, 51, n).astype(np.int64),
        "p_container": containers,
        "p_retailprice": np.round(900 + rng.uniform(0, 200, n), 2),
        "p_comment": _strings([f"part comment {i}" for i in range(n)]),
    })


def _gen_partsupp(rng, state, db, register=True):
    n_part = state.get("n_part", max(1, int(200_000 * state["sf"])))
    n_supp = state.get("n_supplier", max(1, int(10_000 * state["sf"])))
    n = n_part * 4
    _register(db, register, "partsupp", {
        "ps_partkey": np.repeat(np.arange(1, n_part + 1, dtype=np.int64),
                                4),
        "ps_suppkey": (rng.integers(0, n_supp, n) + 1).astype(np.int64),
        "ps_availqty": rng.integers(1, 10_000, n).astype(np.int64),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n), 2),
        "ps_comment": _strings([f"partsupp comment {i}"
                                for i in range(n)]),
    })


def _gen_orders(rng, state, db, register=True):
    n = max(1, int(1_500_000 * state["sf"]))
    state["n_orders"] = n
    n_customer = state.get("n_customer",
                           max(1, int(150_000 * state["sf"])))
    order_span = int((_END_DATE - _START_DATE).astype(int))
    order_dates = (_START_DATE
                   + rng.integers(0, order_span - 151, n)
                   .astype("timedelta64[D]"))
    state["order_dates"] = order_dates
    status = np.where(order_dates < _CURRENT_DATE, "F", "O")
    _register(db, register, "orders", {
        "o_orderkey": np.arange(1, n + 1, dtype=np.int64),
        "o_custkey": (rng.integers(0, n_customer, n) + 1)
        .astype(np.int64),
        "o_orderstatus": _strings(status),
        "o_totalprice": np.round(rng.uniform(850.0, 560_000.0, n), 2),
        "o_orderdate": order_dates,
        "o_orderpriority": _choice_strings(rng, _PRIORITIES, n),
        "o_clerk": _strings([f"Clerk#{i % 1000:09d}" for i in range(n)]),
        "o_shippriority": np.zeros(n, dtype=np.int64),
        "o_comment": _strings([f"order comment {i}" for i in range(n)]),
    })


def _gen_lineitem(rng, state, db, register=True):
    n_orders = state.get("n_orders", max(1, int(1_500_000 * state["sf"])))
    n_part = state.get("n_part", max(1, int(200_000 * state["sf"])))
    n_supp = state.get("n_supplier", max(1, int(10_000 * state["sf"])))
    order_dates = state.get("order_dates")
    if order_dates is None:
        span = int((_END_DATE - _START_DATE).astype(int))
        order_dates = (_START_DATE
                       + rng.integers(0, span - 151, n_orders)
                       .astype("timedelta64[D]"))

    lines_per_order = rng.integers(1, 8, n_orders)
    n = int(lines_per_order.sum())
    orderkey = np.repeat(np.arange(1, n_orders + 1, dtype=np.int64),
                         lines_per_order)
    base_date = np.repeat(order_dates, lines_per_order)

    ship_delay = rng.integers(1, 122, n).astype("timedelta64[D]")
    commit_delay = rng.integers(30, 91, n).astype("timedelta64[D]")
    receipt_delay = rng.integers(1, 31, n).astype("timedelta64[D]")
    shipdate = base_date + ship_delay
    commitdate = base_date + commit_delay
    receiptdate = shipdate + receipt_delay

    quantity = rng.integers(1, 51, n).astype(np.float64)
    retail = 900 + rng.uniform(0, 200, n)
    extendedprice = np.round(quantity * retail / 10.0, 2)
    discount = np.round(rng.integers(0, 11, n) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, n) / 100.0, 2)

    returnflag = np.where(
        receiptdate <= _CURRENT_DATE,
        np.where(rng.random(n) < 0.5, "R", "A"), "N")
    linestatus = np.where(shipdate > _CURRENT_DATE, "O", "F")

    linenumber = np.concatenate(
        [np.arange(1, count + 1) for count in lines_per_order]) \
        .astype(np.int64)

    _register(db, register, "lineitem", {
        "l_orderkey": orderkey,
        "l_partkey": (rng.integers(0, n_part, n) + 1).astype(np.int64),
        "l_suppkey": (rng.integers(0, n_supp, n) + 1).astype(np.int64),
        "l_linenumber": linenumber,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
        "l_returnflag": _strings(returnflag),
        "l_linestatus": _strings(linestatus),
        "l_shipdate": shipdate,
        "l_commitdate": commitdate,
        "l_receiptdate": receiptdate,
        "l_shipinstruct": _choice_strings(rng, _SHIP_INSTRUCTIONS, n),
        "l_shipmode": _choice_strings(rng, _SHIP_MODES, n),
        "l_comment": _strings([f"lineitem comment {i}"
                               for i in range(n)]),
    })

"""Black-Scholes workload: input generator + vectorized NumPy reference.

The PARSEC Black-Scholes kernel prices European options.  The NumPy
reference here plays two roles in the evaluation:

* the Python UDF body that the MonetDB-like baseline executes through its
  bridge (Tables 2 & 4);
* the "Python" configuration of Table 3 (standalone NumPy vs HorseIR).

``option_type`` is numeric: 0 = call, 1 = put (crossing the UDF boundary
as a zero-copy float column, exactly as the paper's setup relies on for
the non-string columns).
"""

from __future__ import annotations

import numpy as np

from repro.engine.storage import Database

__all__ = ["calc_option_price", "cndf", "generate_blackscholes",
           "load_blackscholes_table", "BS_COLUMNS"]

BS_COLUMNS = ("spotPrice", "strike", "rate", "volatility", "otime",
              "optionType")

_INV_SQRT_2PI = 0.39894228040143270286


def cndf(x: np.ndarray) -> np.ndarray:
    """Standardized cumulative normal distribution (PARSEC's polynomial
    approximation)."""
    ax = np.abs(x)
    k = 1.0 / (1.0 + 0.2316419 * ax)
    k2 = k * k
    k3 = k2 * k
    k4 = k3 * k
    k5 = k4 * k
    poly = (0.319381530 * k
            - 0.356563782 * k2
            + 1.781477937 * k3
            - 1.821255978 * k4
            + 1.330274429 * k5)
    n = 1.0 - _INV_SQRT_2PI * np.exp(-0.5 * ax * ax) * poly
    return np.where(x >= 0, n, 1.0 - n)


def calc_option_price(spot_price, strike, rate, volatility, otime,
                      option_type) -> np.ndarray:
    """Vectorized Black-Scholes option pricing (the Python UDF body)."""
    spot_price = np.asarray(spot_price, dtype=np.float64)
    strike = np.asarray(strike, dtype=np.float64)
    rate = np.asarray(rate, dtype=np.float64)
    volatility = np.asarray(volatility, dtype=np.float64)
    otime = np.asarray(otime, dtype=np.float64)
    option_type = np.asarray(option_type, dtype=np.float64)

    log_term = np.log(spot_price / strike)
    pow_term = 0.5 * volatility * volatility
    den = volatility * np.sqrt(otime)
    d1 = (((rate + pow_term) * otime) + log_term) / den
    d2 = d1 - den
    n_d1 = cndf(d1)
    n_d2 = cndf(d2)
    future_value = strike * np.exp(-rate * otime)
    call = (spot_price * n_d1) - (future_value * n_d2)
    put = (future_value * (1.0 - n_d2)) - (spot_price * (1.0 - n_d1))
    return option_type * put + (1.0 - option_type) * call


def generate_blackscholes(n: int, seed: int = 7) -> dict[str, np.ndarray]:
    """Input columns for ``n`` options.

    ``spotPrice`` is uniform on [2, 200], matching the selectivity knobs
    the bs1/bs2 variants use (``< 50 OR > 100``-style predicates)."""
    rng = np.random.default_rng(seed)
    return {
        "spotPrice": rng.uniform(2.0, 200.0, n),
        "strike": rng.uniform(2.0, 200.0, n),
        "rate": rng.uniform(0.01, 0.10, n),
        "volatility": rng.uniform(0.05, 0.65, n),
        "otime": rng.uniform(0.05, 4.0, n),
        "optionType": rng.integers(0, 2, n).astype(np.float64),
    }


def load_blackscholes_table(db: Database, n: int, seed: int = 7,
                            name: str = "blackScholesData"):
    """Create the ``blackScholesData`` table used by the bs* queries."""
    return db.create_table(name, generate_blackscholes(n, seed))

"""Schema catalog: table and column metadata.

Column names are required to be globally unique across the catalog (true
for TPC-H, whose columns carry table prefixes like ``l_`` and ``o_``);
this keeps name resolution simple and matches how the paper's generated
HorseIR refers to columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import types as ht
from repro.errors import CatalogError

__all__ = ["TableSchema", "Catalog"]


@dataclass
class TableSchema:
    name: str
    #: ordered (column name, HorseIR type) pairs.
    columns: list[tuple[str, ht.HorseType]]

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]

    def column_type(self, name: str) -> ht.HorseType:
        for column, type_ in self.columns:
            if column == name:
                return type_
        raise CatalogError(
            f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column == name for column, _ in self.columns)


@dataclass
class Catalog:
    tables: dict[str, TableSchema] = field(default_factory=dict)

    def add(self, schema: TableSchema) -> None:
        if schema.name in self.tables:
            raise CatalogError(f"duplicate table {schema.name!r}")
        for column in schema.column_names():
            owner = self.owner_of(column)
            if owner is not None:
                raise CatalogError(
                    f"column {column!r} already exists in table "
                    f"{owner!r}; column names must be globally unique")
        self.tables[schema.name] = schema

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def owner_of(self, column: str) -> str | None:
        """The table owning ``column``, or None."""
        for schema in self.tables.values():
            if schema.has_column(column):
                return schema.name
        return None

    def column_type(self, column: str) -> ht.HorseType:
        owner = self.owner_of(column)
        if owner is None:
            raise CatalogError(f"unknown column {column!r}")
        return self.tables[owner].column_type(column)

"""SQL frontend: parser, logical planner, and the plan→HorseIR translator.

The reproduction of the paper's Section 3.1 pipeline: SQL text parses to an
AST, the planner produces an optimized logical plan (the MonetDB stand-in's
execution plan), the plan serializes to JSON (as HorsePower converts
MonetDB's plan trees), and :mod:`repro.sql.plan_to_ir` translates the JSON
into a HorseIR ``main`` method with placeholder method calls for UDFs.
"""

from repro.sql.catalog import Catalog, TableSchema  # noqa: F401
from repro.sql.parser import parse_sql  # noqa: F401
from repro.sql.planner import plan_query  # noqa: F401

"""SQL lexer.  Case-insensitive keywords, ``--`` comments, standard
operators."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as",
    "and", "or", "not", "in", "between", "like", "case", "when", "then",
    "else", "end", "asc", "desc", "date", "interval", "inner", "join",
    "on", "distinct", "having",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>--[^\n]*)
  | (?P<NUMBER>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><>|<=|>=|!=|\|\||[-+*/%<>=(),.;])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {source[pos]!r}",
                                 line, pos - line_start + 1)
        kind = match.lastgroup
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "ID" and text.lower() in KEYWORDS:
            tokens.append(Token(text.lower().upper(), text, line, column))
        elif kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens

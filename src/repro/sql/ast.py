"""AST for the SQL subset.

Covers what the TPC-H-derived benchmarks need: SELECT lists with arithmetic
and aggregates, FROM with multiple tables and table-UDF calls, WHERE with
AND/OR/NOT, comparisons, BETWEEN, IN, LIKE, CASE expressions, scalar UDF
calls anywhere an expression is legal, GROUP BY, ORDER BY and LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr", "Col", "Star", "IntLit", "FloatLit", "StrLit", "DateLit",
    "IntervalLit", "BinOp", "UnOp", "FuncCall", "CaseWhen", "InList",
    "Between", "SelectItem", "TableRef", "SubqueryRef", "TableUDFRef",
    "Select",
    "AGGREGATE_NAMES",
]

AGGREGATE_NAMES = ("sum", "avg", "min", "max", "count")


class Expr:
    """Base class for SQL expressions."""


@dataclass
class Col(Expr):
    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass
class Star(Expr):
    """``*`` — only valid inside COUNT(*) and SELECT lists."""

    def __str__(self) -> str:
        return "*"


@dataclass
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class FloatLit(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class StrLit(Expr):
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class DateLit(Expr):
    value: str  # ISO yyyy-mm-dd

    def __str__(self) -> str:
        return f"DATE '{self.value}'"


@dataclass
class IntervalLit(Expr):
    amount: int
    unit: str  # "day", "month", "year"

    def __str__(self) -> str:
        return f"INTERVAL '{self.amount}' {self.unit.upper()}"


@dataclass
class BinOp(Expr):
    """Arithmetic/comparison/logical operator in SQL spelling
    (``=``, ``<>``, ``AND``...)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnOp(Expr):
    op: str  # "-" or "NOT"
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class FuncCall(Expr):
    """Aggregate, builtin scalar function, or scalar UDF call."""

    name: str  # case preserved; compare with .lower() for aggregates
    args: list[Expr]
    distinct: bool = False

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})"


@dataclass
class CaseWhen(Expr):
    whens: list[tuple[Expr, Expr]]
    else_expr: Expr | None = None

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.else_expr is not None:
            parts.append(f"ELSE {self.else_expr}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class InList(Expr):
    expr: Expr
    items: list[Expr]
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        items = ", ".join(str(i) for i in self.items)
        return f"({self.expr} {op} ({items}))"


@dataclass
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.expr} {op} {self.low} AND {self.high})"


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass
class TableRef:
    """A base table in FROM, with optional alias."""

    name: str
    alias: str | None = None


@dataclass
class SubqueryRef:
    """``FROM (SELECT ...) AS alias`` — a derived table."""

    subquery: "Select"
    alias: str | None = None


@dataclass
class TableUDFRef:
    """``FROM udf((SELECT ...))`` — a table UDF over a subquery."""

    name: str
    subquery: "Select"
    alias: str | None = None


@dataclass
class Select:
    items: list[SelectItem]
    from_items: list = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

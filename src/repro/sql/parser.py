"""Recursive-descent SQL parser for the supported subset."""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

__all__ = ["parse_sql"]


def parse_sql(source: str) -> ast.Select:
    """Parse one SELECT statement (trailing ``;`` optional)."""
    parser = _Parser(source)
    select = parser.parse_select()
    parser.finish()
    return select


class _Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (
            text is None or token.text.lower() == text.lower())

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise SQLSyntaxError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line, token.column)
        return self._advance()

    def finish(self) -> None:
        self._accept("OP", ";")
        token = self._current
        if token.kind != "EOF":
            raise SQLSyntaxError(
                f"unexpected trailing input {token.text!r}",
                token.line, token.column)

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self._expect("SELECT")
        distinct = bool(self._accept("DISTINCT"))
        items = [self._parse_select_item()]
        while self._accept("OP", ","):
            items.append(self._parse_select_item())

        from_items: list = []
        if self._accept("FROM"):
            from_items.append(self._parse_from_item())
            while True:
                if self._accept("OP", ","):
                    from_items.append(self._parse_from_item())
                    continue
                if self._check("INNER") or self._check("JOIN"):
                    self._accept("INNER")
                    self._expect("JOIN")
                    right = self._parse_from_item()
                    self._expect("ON")
                    condition = self._parse_expr()
                    from_items.append(("join", right, condition))
                    continue
                break

        where = None
        if self._accept("WHERE"):
            where = self._parse_expr()

        group_by: list[ast.Expr] = []
        if self._accept("GROUP"):
            self._expect("BY")
            group_by.append(self._parse_expr())
            while self._accept("OP", ","):
                group_by.append(self._parse_expr())

        having = None
        if self._accept("HAVING"):
            having = self._parse_expr()

        order_by: list[tuple[ast.Expr, bool]] = []
        if self._accept("ORDER"):
            self._expect("BY")
            order_by.append(self._parse_order_item())
            while self._accept("OP", ","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept("LIMIT"):
            token = self._expect("NUMBER")
            limit = int(token.text)

        return ast.Select(items, from_items, where, group_by, having,
                          order_by, limit, distinct)

    def _parse_select_item(self) -> ast.SelectItem:
        if self._check("OP", "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expr = self._parse_expr()
        alias = None
        if self._accept("AS"):
            alias = self._expect("ID").text
        elif self._check("ID"):
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> tuple[ast.Expr, bool]:
        expr = self._parse_expr()
        ascending = True
        if self._accept("DESC"):
            ascending = False
        else:
            self._accept("ASC")
        return (expr, ascending)

    def _parse_from_item(self):
        if self._check("OP", "("):
            # Derived table: (SELECT ...) [AS] alias
            self._advance()
            subquery = self.parse_select()
            self._expect("OP", ")")
            alias = self._parse_optional_alias()
            return ast.SubqueryRef(subquery, alias)
        name = self._expect("ID").text
        if self._check("OP", "("):
            # Table UDF: udf((SELECT ...)) — double parens per the paper.
            self._advance()
            self._expect("OP", "(")
            subquery = self.parse_select()
            self._expect("OP", ")")
            self._expect("OP", ")")
            alias = self._parse_optional_alias()
            return ast.TableUDFRef(name, subquery, alias)
        alias = self._parse_optional_alias()
        return ast.TableRef(name, alias)

    def _parse_optional_alias(self) -> str | None:
        if self._accept("AS"):
            return self._expect("ID").text
        if self._check("ID"):
            return self._advance().text
        return None

    # -- expressions ------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept("OR"):
            left = ast.BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept("AND"):
            left = ast.BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept("NOT"):
            return ast.UnOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        negated = bool(self._accept("NOT"))
        if self._accept("BETWEEN"):
            low = self._parse_additive()
            self._expect("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept("IN"):
            self._expect("OP", "(")
            items = [self._parse_additive()]
            while self._accept("OP", ","):
                items.append(self._parse_additive())
            self._expect("OP", ")")
            return ast.InList(left, items, negated)
        if self._accept("LIKE"):
            pattern = self._parse_additive()
            like = ast.BinOp("like", left, pattern)
            return ast.UnOp("not", like) if negated else like
        if negated:
            token = self._current
            raise SQLSyntaxError(
                "expected BETWEEN, IN or LIKE after NOT",
                token.line, token.column)
        for op in ("=", "<>", "!=", "<=", ">=", "<", ">"):
            if self._check("OP", op):
                self._advance()
                right = self._parse_additive()
                return ast.BinOp("<>" if op == "!=" else op, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.kind == "OP" and self._current.text in ("+",
                                                                    "-"):
            op = self._advance().text
            left = ast.BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._current.kind == "OP" and self._current.text in ("*",
                                                                    "/"):
            op = self._advance().text
            left = ast.BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check("OP", "-"):
            self._advance()
            return ast.UnOp("-", self._parse_unary())
        if self._check("OP", "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "NUMBER":
            self._advance()
            if "." in token.text or "e" in token.text.lower():
                return ast.FloatLit(float(token.text))
            return ast.IntLit(int(token.text))
        if token.kind == "STRING":
            self._advance()
            return ast.StrLit(token.text[1:-1].replace("''", "'"))
        if token.kind == "DATE":
            self._advance()
            value = self._expect("STRING").text[1:-1]
            return ast.DateLit(value)
        if token.kind == "INTERVAL":
            self._advance()
            amount_text = self._expect("STRING").text[1:-1]
            unit = self._expect("ID").text.lower().rstrip("s")
            if unit not in ("day", "month", "year"):
                raise SQLSyntaxError(f"unsupported interval unit {unit!r}",
                                     token.line, token.column)
            return ast.IntervalLit(int(amount_text), unit)
        if token.kind == "CASE":
            return self._parse_case()
        if self._accept("OP", "("):
            expr = self._parse_expr()
            self._expect("OP", ")")
            return expr
        if token.kind == "ID":
            self._advance()
            name = token.text
            if self._check("OP", "("):
                return self._parse_call(name)
            if self._accept("OP", "."):
                column = self._expect("ID").text
                return ast.Col(column, table=name)
            return ast.Col(name)
        raise SQLSyntaxError(f"unexpected token {token.text!r}",
                             token.line, token.column)

    def _parse_case(self) -> ast.Expr:
        self._expect("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept("WHEN"):
            cond = self._parse_expr()
            self._expect("THEN")
            whens.append((cond, self._parse_expr()))
        else_expr = None
        if self._accept("ELSE"):
            else_expr = self._parse_expr()
        self._expect("END")
        if not whens:
            token = self._current
            raise SQLSyntaxError("CASE requires at least one WHEN",
                                 token.line, token.column)
        return ast.CaseWhen(whens, else_expr)

    def _parse_call(self, name: str) -> ast.Expr:
        self._expect("OP", "(")
        distinct = bool(self._accept("DISTINCT"))
        args: list[ast.Expr] = []
        if self._check("OP", "*"):
            self._advance()
            args.append(ast.Star())
        elif not self._check("OP", ")"):
            args.append(self._parse_expr())
            while self._accept("OP", ","):
                args.append(self._parse_expr())
        self._expect("OP", ")")
        # Case preserved: UDF names are case-sensitive; aggregate checks
        # lowercase explicitly.
        return ast.FuncCall(name, args, distinct)

"""UDF registry shared by both systems.

One declaration serves both execution paths, mirroring the experiment
setup in Section 4: the *MATLAB source* is what HorsePower translates into
HorseIR and merges into the query, and the *Python implementation* is what
the MonetDB-like baseline runs through its black-box UDF bridge ("with an
effort to have similar code within the UDF").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import types as ht
from repro.errors import UDFError

__all__ = ["ScalarUDF", "TableUDFDef", "UDFRegistry"]


@dataclass
class ScalarUDF:
    """A scalar UDF: one value per row (vectorized over columns)."""

    name: str
    #: input parameter element types, in call order.
    param_types: list[ht.HorseType]
    ret_type: ht.HorseType
    #: MATLAB source (HorsePower path); entry function computes the result.
    matlab_source: str | None = None
    #: Python/NumPy implementation (baseline path).
    python_impl: Callable | None = None

    @property
    def kind(self) -> str:
        return "scalar"


@dataclass
class TableUDFDef:
    """A table UDF: consumes all input columns, returns named columns."""

    name: str
    param_types: list[ht.HorseType]
    #: declared output columns: (name, type) in order.
    output_columns: list[tuple[str, ht.HorseType]] = field(
        default_factory=list)
    matlab_source: str | None = None
    #: Python impl returning a tuple/list of arrays matching
    #: ``output_columns``.
    python_impl: Callable | None = None

    @property
    def kind(self) -> str:
        return "table"


@dataclass
class UDFRegistry:
    _udfs: dict[str, object] = field(default_factory=dict)
    #: bumped on every registration; part of the plan-cache key so a
    #: prepared query compiled before a UDF existed can never be reused
    #: after registration changes what the planner would produce.
    _version: int = 0

    def register(self, udf) -> None:
        key = udf.name.lower()
        if key in self._udfs:
            raise UDFError(f"UDF {udf.name!r} is already registered")
        self._udfs[key] = udf
        self._version += 1

    @property
    def version(self) -> int:
        return self._version

    def fingerprint(self) -> tuple:
        """A hashable digest of the registry's contents, for plan-cache
        keys: registration version plus the declared signatures."""
        signatures = tuple(sorted(
            (name, udf.kind, tuple(str(t) for t in udf.param_types))
            for name, udf in self._udfs.items()))
        return (self._version, signatures)

    def get(self, name: str):
        udf = self._udfs.get(name.lower())
        if udf is None:
            raise UDFError(f"unknown UDF {name!r}")
        return udf

    def is_udf(self, name: str) -> bool:
        return name.lower() in self._udfs

    def is_scalar(self, name: str) -> bool:
        udf = self._udfs.get(name.lower())
        return isinstance(udf, ScalarUDF)

    def is_table(self, name: str) -> bool:
        udf = self._udfs.get(name.lower())
        return isinstance(udf, TableUDFDef)

    def names(self) -> list[str]:
        return [udf.name for udf in self._udfs.values()]

"""Logical plan nodes and their JSON serialization.

The plan is the interface between the two systems in the evaluation:

* the baseline engine (:mod:`repro.engine.executor`) interprets plan trees
  directly, the way MonetDB executes MAL;
* HorsePower serializes the tree to JSON — as the paper converts MonetDB's
  tree-shaped plans — and :mod:`repro.sql.plan_to_ir` translates the JSON
  into HorseIR.

Expressions inside nodes are SQL AST expressions (already resolved and
constant-folded by the planner); they serialize via ``str(expr)`` plus a
structured form for the translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import types as ht
from repro.sql import ast

__all__ = ["PlanNode", "Scan", "Filter", "Project", "Join",
           "GroupAggregate", "Sort", "Limit", "TableUDF", "plan_to_json"]


@dataclass
class PlanNode:
    """Base class; ``output`` is the ordered (name, type) schema.

    ``est_rows`` is the cardinality estimate the statistics subsystem
    (:mod:`repro.stats.estimate`) annotates after the plan passes run;
    it stays ``None`` when no statistics cover the node's inputs and is
    excluded from equality so estimates never affect plan comparison."""

    output: list[tuple[str, ht.HorseType]] = field(default_factory=list,
                                                   kw_only=True)
    est_rows: int | None = field(default=None, kw_only=True,
                                 compare=False)

    def children(self) -> list["PlanNode"]:
        return []

    def output_names(self) -> list[str]:
        return [name for name, _ in self.output]

    def output_type(self, name: str) -> ht.HorseType:
        for column, type_ in self.output:
            if column == name:
                return type_
        raise KeyError(name)


@dataclass
class Scan(PlanNode):
    table: str
    columns: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return f"scan {self.table}[{', '.join(self.columns)}]"


@dataclass
class Filter(PlanNode):
    child: PlanNode = None
    predicate: ast.Expr = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"filter {self.predicate}"


@dataclass
class Project(PlanNode):
    """Computes ``items`` = (name, expression) pairs; replaces the schema."""

    child: PlanNode = None
    items: list[tuple[str, ast.Expr]] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        cols = ", ".join(f"{expr} AS {name}" for name, expr in self.items)
        return f"project {cols}"


@dataclass
class Join(PlanNode):
    left: PlanNode = None
    right: PlanNode = None
    left_keys: list[str] = field(default_factory=list)
    right_keys: list[str] = field(default_factory=list)
    kind: str = "inner"

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys,
                                                    self.right_keys))
        return f"{self.kind} join on {keys}"


@dataclass
class GroupAggregate(PlanNode):
    """``keys`` are plain column names of the child; ``aggregates`` are
    (output name, function, input column or None for count(*))."""

    child: PlanNode = None
    keys: list[str] = field(default_factory=list)
    aggregates: list[tuple[str, str, str | None]] = field(
        default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(f"{fn}({col or '*'}) AS {name}"
                         for name, fn, col in self.aggregates)
        return f"group by [{', '.join(self.keys)}] agg {aggs}"


@dataclass
class Sort(PlanNode):
    child: PlanNode = None
    keys: list[tuple[str, bool]] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(f"{name} {'asc' if asc else 'desc'}"
                         for name, asc in self.keys)
        return f"sort {keys}"


@dataclass
class Limit(PlanNode):
    child: PlanNode = None
    count: int = 0

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"limit {self.count}"


@dataclass
class TableUDF(PlanNode):
    """Black-box table UDF call: all child columns go in, the declared
    output columns come out.  Neither predicates nor pruning may cross
    this node (that is the point of the bs2 experiment)."""

    child: PlanNode = None
    udf_name: str = ""
    input_columns: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"table_udf {self.udf_name}({', '.join(self.input_columns)})"


def plan_to_json(node: PlanNode) -> dict:
    """Serialize a plan tree to JSON (the MonetDB-plan-tree → JSON step)."""
    base = {
        "output": [[name, str(type_)] for name, type_ in node.output],
        "output_names": node.output_names(),
    }
    if node.est_rows is not None:
        base["est_rows"] = node.est_rows
    if isinstance(node, Scan):
        base.update(op="scan", table=node.table, columns=list(node.columns))
    elif isinstance(node, Filter):
        base.update(op="filter", predicate=_expr_to_json(node.predicate),
                    child=plan_to_json(node.child))
    elif isinstance(node, Project):
        base.update(op="project",
                    items=[[name, _expr_to_json(expr)]
                           for name, expr in node.items],
                    child=plan_to_json(node.child))
    elif isinstance(node, Join):
        base.update(op="join", kind=node.kind,
                    left_keys=list(node.left_keys),
                    right_keys=list(node.right_keys),
                    left=plan_to_json(node.left),
                    right=plan_to_json(node.right))
    elif isinstance(node, GroupAggregate):
        base.update(op="group",
                    keys=list(node.keys),
                    aggregates=[[name, fn, col]
                                for name, fn, col in node.aggregates],
                    child=plan_to_json(node.child))
    elif isinstance(node, Sort):
        base.update(op="sort", keys=[[name, asc] for name, asc in node.keys],
                    child=plan_to_json(node.child))
    elif isinstance(node, Limit):
        base.update(op="limit", count=node.count,
                    child=plan_to_json(node.child))
    elif isinstance(node, TableUDF):
        base.update(op="table_udf", udf=node.udf_name,
                    inputs=list(node.input_columns),
                    child=plan_to_json(node.child))
    else:
        raise TypeError(f"unknown plan node {type(node).__name__}")
    return base


def _expr_to_json(expr: ast.Expr) -> dict:
    """Structured expression serialization for the IR translator."""
    if isinstance(expr, ast.Col):
        return {"kind": "col", "name": expr.name}
    if isinstance(expr, ast.IntLit):
        return {"kind": "int", "value": expr.value}
    if isinstance(expr, ast.FloatLit):
        return {"kind": "float", "value": expr.value}
    if isinstance(expr, ast.StrLit):
        return {"kind": "str", "value": expr.value}
    if isinstance(expr, ast.DateLit):
        return {"kind": "date", "value": expr.value}
    if isinstance(expr, ast.BinOp):
        return {"kind": "binop", "op": expr.op,
                "left": _expr_to_json(expr.left),
                "right": _expr_to_json(expr.right)}
    if isinstance(expr, ast.UnOp):
        return {"kind": "unop", "op": expr.op,
                "operand": _expr_to_json(expr.operand)}
    if isinstance(expr, ast.FuncCall):
        return {"kind": "call", "name": expr.name,
                "args": [_expr_to_json(a) for a in expr.args]}
    if isinstance(expr, ast.CaseWhen):
        return {"kind": "case",
                "whens": [[_expr_to_json(c), _expr_to_json(v)]
                          for c, v in expr.whens],
                "else": _expr_to_json(expr.else_expr)
                if expr.else_expr is not None else None}
    if isinstance(expr, ast.InList):
        return {"kind": "in", "expr": _expr_to_json(expr.expr),
                "items": [_expr_to_json(i) for i in expr.items],
                "negated": expr.negated}
    if isinstance(expr, ast.Between):
        return {"kind": "between", "expr": _expr_to_json(expr.expr),
                "low": _expr_to_json(expr.low),
                "high": _expr_to_json(expr.high),
                "negated": expr.negated}
    raise TypeError(f"cannot serialize expression {type(expr).__name__}")

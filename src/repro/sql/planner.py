"""Logical planner: SQL AST → optimized plan tree.

Planning pipeline (the MonetDB stand-in's optimizer):

1. constant folding (``DATE '1998-12-01' - INTERVAL '90' DAY`` → a date);
2. FROM resolution: scans, derived tables, table-UDF calls, join clauses;
   comma joins recover their hash-join keys from WHERE equi-join
   conjuncts right here, at build time;
3. WHERE decomposition into conjuncts; every conjunct the join keys did
   not consume lands in **one** ``Filter`` directly above the join tree
   (the *raw* plan);
4. aggregation planning: aggregate arguments become computed columns in a
   pre-projection, then one GroupAggregate node;
5. plan-level rewrite passes (:mod:`repro.sql.plan_passes`) run through
   the :class:`~repro.core.passes.PassManager`: **predicate pushdown**
   sinks filters below joins and through projections, then **column
   pruning** shrinks every node's column set to what its parent needs.

The planner treats scalar UDF calls as ordinary expressions (so they ride
inside Project/Filter nodes), mirroring how MonetDB plans UDF hooks.
"""

from __future__ import annotations

import numpy as np

from repro.core import types as ht
from repro.core.passes import OptimizeStats, PassManager, resolve_pipeline
from repro.errors import PlanError
from repro.sql import ast
from repro.sql import plan as p
from repro.sql.catalog import Catalog
from repro.sql.plan_passes import _and_all, _split_conjuncts
from repro.sql.udf import UDFRegistry

__all__ = ["plan_query"]


def plan_query(select: ast.Select, catalog: Catalog,
               udfs: UDFRegistry | None = None, *,
               pipeline=None, table_stats=None,
               stats: OptimizeStats | None = None) -> p.PlanNode:
    """Plan a SELECT statement against ``catalog`` (+ registered UDFs).

    ``pipeline`` selects which plan-level passes run after the raw plan
    is built (a preset name, a comma list, or a
    :class:`~repro.core.passes.Pipeline`); the default ``O2`` preset runs
    predicate pushdown then column pruning, which every preset includes
    — only a custom ``--passes`` list can drop them.  ``stats`` (when
    given) accumulates per-pass timing in its ``pass_stats``.

    ``table_stats`` (a :class:`~repro.stats.StatsStore`, optional)
    feeds the statistics-driven passes and, afterwards, the cardinality
    estimator: every node of the final plan gets ``est_rows`` where the
    statistics cover its inputs.  The annotation runs *after* the
    passes so rebuilt nodes keep their estimates.
    """
    planner = _Planner(catalog, udfs or UDFRegistry())
    node = planner.plan_select(select)
    manager = PassManager(resolve_pipeline(pipeline))
    node = manager.run_plan(node, udfs=planner.udfs,
                            table_stats=table_stats, stats=stats)
    if table_stats:
        from repro.stats.estimate import annotate_plan
        annotate_plan(node, table_stats)
    return node


# ---------------------------------------------------------------------------
# expression utilities
# ---------------------------------------------------------------------------

def _fold_constants(expr: ast.Expr) -> ast.Expr:
    """Fold date ± interval and numeric literal arithmetic."""
    if isinstance(expr, ast.BinOp):
        left = _fold_constants(expr.left)
        right = _fold_constants(expr.right)
        if isinstance(left, ast.DateLit) and isinstance(right,
                                                        ast.IntervalLit) \
                and expr.op in ("+", "-"):
            return _shift_date(left, right, expr.op)
        if isinstance(left, (ast.IntLit, ast.FloatLit)) \
                and isinstance(right, (ast.IntLit, ast.FloatLit)) \
                and expr.op in ("+", "-", "*", "/"):
            return _fold_numeric(left, right, expr.op)
        return ast.BinOp(expr.op, left, right)
    if isinstance(expr, ast.UnOp):
        operand = _fold_constants(expr.operand)
        if expr.op == "-" and isinstance(operand, ast.IntLit):
            return ast.IntLit(-operand.value)
        if expr.op == "-" and isinstance(operand, ast.FloatLit):
            return ast.FloatLit(-operand.value)
        return ast.UnOp(expr.op, operand)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name,
                            [_fold_constants(a) for a in expr.args],
                            expr.distinct)
    if isinstance(expr, ast.CaseWhen):
        whens = [(_fold_constants(c), _fold_constants(v))
                 for c, v in expr.whens]
        else_expr = (_fold_constants(expr.else_expr)
                     if expr.else_expr is not None else None)
        return ast.CaseWhen(whens, else_expr)
    if isinstance(expr, ast.InList):
        return ast.InList(_fold_constants(expr.expr),
                          [_fold_constants(i) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_fold_constants(expr.expr),
                           _fold_constants(expr.low),
                           _fold_constants(expr.high), expr.negated)
    return expr


def _shift_date(date: ast.DateLit, interval: ast.IntervalLit,
                op: str) -> ast.DateLit:
    amount = interval.amount if op == "+" else -interval.amount
    value = np.datetime64(date.value, "D")
    if interval.unit == "day":
        value = value + np.timedelta64(amount, "D")
    elif interval.unit == "month":
        months = value.astype("datetime64[M]") + np.timedelta64(amount, "M")
        day = (value - value.astype("datetime64[M]").astype(
            "datetime64[D]")).astype(int)
        value = months.astype("datetime64[D]") + np.timedelta64(
            int(day), "D")
    else:  # year
        months = value.astype("datetime64[M]") + np.timedelta64(
            12 * amount, "M")
        day = (value - value.astype("datetime64[M]").astype(
            "datetime64[D]")).astype(int)
        value = months.astype("datetime64[D]") + np.timedelta64(
            int(day), "D")
    return ast.DateLit(str(value))


def _fold_numeric(left, right, op: str):
    a, b = left.value, right.value
    result = {"+": a + b, "-": a - b, "*": a * b,
              "/": a / b if b != 0 else float("nan")}[op]
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit) \
            and op != "/":
        return ast.IntLit(int(result))
    return ast.FloatLit(float(result))


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.name.lower() in ast.AGGREGATE_NAMES:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinOp):
        return _contains_aggregate(expr.left) \
            or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.CaseWhen):
        for cond, value in expr.whens:
            if _contains_aggregate(cond) or _contains_aggregate(value):
                return True
        return expr.else_expr is not None \
            and _contains_aggregate(expr.else_expr)
    return False


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class _Planner:
    def __init__(self, catalog: Catalog, udfs: UDFRegistry):
        self.catalog = catalog
        self.udfs = udfs
        self._derived_count = 0

    # -- type inference over a node's schema -----------------------------------

    def infer_type(self, expr: ast.Expr,
                   node: p.PlanNode) -> ht.HorseType:
        if isinstance(expr, ast.Col):
            try:
                return node.output_type(expr.name)
            except KeyError:
                raise PlanError(f"unknown column {expr.name!r}; "
                                f"available: {node.output_names()}") \
                    from None
        if isinstance(expr, ast.IntLit):
            return ht.I64
        if isinstance(expr, ast.FloatLit):
            return ht.F64
        if isinstance(expr, ast.StrLit):
            return ht.STR
        if isinstance(expr, ast.DateLit):
            return ht.DATE
        if isinstance(expr, ast.UnOp):
            if expr.op == "not":
                return ht.BOOL
            return self.infer_type(expr.operand, node)
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or", "=", "<>", "<", "<=", ">", ">=",
                           "like"):
                return ht.BOOL
            if expr.op == "/":
                return ht.F64
            left = self.infer_type(expr.left, node)
            right = self.infer_type(expr.right, node)
            return ht.promote(left, right)
        if isinstance(expr, (ast.InList, ast.Between)):
            return ht.BOOL
        if isinstance(expr, ast.CaseWhen):
            result = self.infer_type(expr.whens[0][1], node)
            for _, value in expr.whens[1:]:
                result = ht.promote(result,
                                    self.infer_type(value, node))
            if expr.else_expr is not None:
                result = ht.promote(result, self.infer_type(
                    expr.else_expr, node))
            return result
        if isinstance(expr, ast.FuncCall):
            name = expr.name.lower()
            if name in ("sum", "avg"):
                return ht.F64
            if name == "count":
                return ht.I64
            if name in ("min", "max"):
                return self.infer_type(expr.args[0], node)
            if self.udfs.is_scalar(expr.name):
                return self.udfs.get(expr.name).ret_type
            raise PlanError(f"unknown function {expr.name!r}")
        raise PlanError(
            f"cannot type expression {type(expr).__name__}")

    # -- FROM ---------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> p.PlanNode:
        """Build the *raw* plan: joins resolved, every leftover WHERE
        conjunct in one Filter above the join tree.  Predicate pushdown
        and column pruning are plan-level passes applied by
        :func:`plan_query`, not here."""
        node = self._plan_from(select)
        conjuncts = [_fold_constants(c)
                     for c in _split_conjuncts(select.where)]
        node, conjuncts = self._resolve_crosses(node, conjuncts)
        if conjuncts:
            node = p.Filter(node, _and_all(conjuncts),
                            output=list(node.output))
        node = self._plan_projection(select, node)
        node = self._plan_order_limit(select, node)
        return node

    def _plan_from(self, select: ast.Select) -> p.PlanNode:
        if not select.from_items:
            raise PlanError("queries without FROM are unsupported")
        nodes: list[p.PlanNode] = []
        join_clauses: list[tuple[p.PlanNode, ast.Expr]] = []
        for item in select.from_items:
            if isinstance(item, tuple) and item[0] == "join":
                _, right_ref, condition = item
                join_clauses.append((self._plan_from_item(right_ref),
                                     _fold_constants(condition)))
            else:
                nodes.append(self._plan_from_item(item))
        node = nodes[0]
        for other in nodes[1:]:
            # Comma join: keys are recovered from WHERE conjuncts later by
            # _apply_filters via _try_join_condition; start with a cross
            # join marker (rejected unless keys are found).
            node = _PendingCross(node, other)
        for right, condition in join_clauses:
            node = self._make_join(node, right, condition)
        return node

    def _plan_from_item(self, item) -> p.PlanNode:
        if isinstance(item, ast.TableRef):
            schema = self.catalog.table(item.name)
            return p.Scan(item.name, schema.column_names(),
                          output=list(schema.columns))
        if isinstance(item, ast.SubqueryRef):
            return self.plan_select(item.subquery)
        if isinstance(item, ast.TableUDFRef):
            child = self.plan_select(item.subquery)
            udf = self.udfs.get(item.name)
            if udf.kind != "table":
                raise PlanError(
                    f"{item.name!r} is a scalar UDF used in FROM")
            return p.TableUDF(child, udf.name,
                              list(child.output_names()),
                              output=list(udf.output_columns))
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _make_join(self, left: p.PlanNode, right: p.PlanNode,
                   condition: ast.Expr) -> p.Join:
        keys = self._join_keys(left, right, condition)
        if keys is None:
            raise PlanError(
                f"unsupported join condition {condition}; only "
                f"conjunctions of column equalities are supported")
        left_keys, right_keys = keys
        return p.Join(left, right, left_keys, right_keys, "inner",
                      output=list(left.output) + list(right.output))

    def _join_keys(self, left: p.PlanNode, right: p.PlanNode,
                   condition: ast.Expr):
        left_cols = set(left.output_names())
        right_cols = set(right.output_names())
        left_keys: list[str] = []
        right_keys: list[str] = []
        for conjunct in _split_conjuncts(condition):
            if not (isinstance(conjunct, ast.BinOp)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, ast.Col)
                    and isinstance(conjunct.right, ast.Col)):
                return None
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_cols and b in right_cols:
                left_keys.append(a)
                right_keys.append(b)
            elif b in left_cols and a in right_cols:
                left_keys.append(b)
                right_keys.append(a)
            else:
                return None
        return (left_keys, right_keys)

    # -- comma-join resolution --------------------------------------------------

    def _resolve_crosses(self, node: p.PlanNode,
                         conjuncts: list[ast.Expr]):
        """Turn comma joins into hash joins, consuming the WHERE
        equalities that become their keys; returns (node, leftover
        conjuncts)."""
        if isinstance(node, _PendingCross):
            left, conjuncts = self._resolve_crosses(node.left, conjuncts)
            right, conjuncts = self._resolve_crosses(node.right,
                                                     conjuncts)
            left_cols = set(left.output_names())
            right_cols = set(right.output_names())
            key_conjuncts: list[ast.Expr] = []
            others: list[ast.Expr] = []
            for conjunct in conjuncts:
                if isinstance(conjunct, ast.BinOp) \
                        and conjunct.op == "=" \
                        and isinstance(conjunct.left, ast.Col) \
                        and isinstance(conjunct.right, ast.Col):
                    a, b = conjunct.left.name, conjunct.right.name
                    if (a in left_cols and b in right_cols) \
                            or (b in left_cols and a in right_cols):
                        key_conjuncts.append(conjunct)
                        continue
                others.append(conjunct)
            if not key_conjuncts:
                raise PlanError(
                    "cross join without an equi-join condition in WHERE "
                    "is unsupported")
            join = self._make_join(left, right, _and_all(key_conjuncts))
            return join, others
        if isinstance(node, p.Join):
            node.left, conjuncts = self._resolve_crosses(node.left,
                                                         conjuncts)
            node.right, conjuncts = self._resolve_crosses(node.right,
                                                          conjuncts)
            return node, conjuncts
        return node, conjuncts

    # -- SELECT list / aggregation ----------------------------------------------

    def _plan_projection(self, select: ast.Select,
                         node: p.PlanNode) -> p.PlanNode:
        items = self._expand_stars(select.items, node)
        has_aggregates = any(_contains_aggregate(item.expr)
                             for item in items)
        if select.having is not None \
                and not (has_aggregates or select.group_by):
            raise PlanError("HAVING requires GROUP BY or aggregates")
        if not has_aggregates and not select.group_by:
            plan_items = []
            output = []
            for item in items:
                name = self._item_name(item)
                expr = _fold_constants(item.expr)
                plan_items.append((name, expr))
                output.append((name, self.infer_type(expr, node)))
            if not self._is_identity_projection(plan_items, node):
                node = p.Project(node, plan_items, output=output)
            if select.distinct:
                node = self._plan_distinct(node)
            return node
        return self._plan_aggregation(select, items, node)

    @staticmethod
    def _plan_distinct(node: p.PlanNode) -> p.PlanNode:
        """SELECT DISTINCT: group on every output column, no aggregates."""
        return p.GroupAggregate(node, node.output_names(), [],
                                output=list(node.output))

    def _expand_stars(self, items: list[ast.SelectItem],
                      node: p.PlanNode) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for name in node.output_names():
                    expanded.append(ast.SelectItem(ast.Col(name), None))
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _is_identity_projection(plan_items, node: p.PlanNode) -> bool:
        names = node.output_names()
        return (len(plan_items) == len(names)
                and all(isinstance(expr, ast.Col) and expr.name == name
                        and name == names[i]
                        for i, (name, expr) in enumerate(plan_items)))

    def _item_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Col):
            return item.expr.name
        self._derived_count += 1
        return f"col{self._derived_count}"

    def _plan_aggregation(self, select: ast.Select,
                          items: list[ast.SelectItem],
                          node: p.PlanNode) -> p.PlanNode:
        group_keys: list[str] = []
        for expr in select.group_by:
            folded = _fold_constants(expr)
            if not isinstance(folded, ast.Col):
                raise PlanError(
                    "GROUP BY supports plain columns only")
            group_keys.append(folded.name)

        # Stage 1: a pre-projection computing every aggregate argument and
        # passing group keys through.
        pre_items: list[tuple[str, ast.Expr]] = []
        pre_output: list[tuple[str, ht.HorseType]] = []
        for key in group_keys:
            pre_items.append((key, ast.Col(key)))
            pre_output.append((key, node.output_type(key)))

        aggregates: list[tuple[str, str, str | None]] = []
        post_exprs: list[tuple[str, ast.Expr, ht.HorseType]] = []

        def plan_agg_expr(expr: ast.Expr) -> ast.Expr:
            """Replace aggregate calls with references to agg outputs."""
            if isinstance(expr, ast.FuncCall) \
                    and expr.name.lower() in ast.AGGREGATE_NAMES:
                fn = expr.name.lower()
                if fn == "count" and (not expr.args or isinstance(
                        expr.args[0], ast.Star)):
                    agg_name = f"agg{len(aggregates)}"
                    aggregates.append((agg_name, "count", None))
                    return ast.Col(agg_name)
                arg = _fold_constants(expr.args[0])
                arg_name = f"aggin{len(pre_items)}"
                pre_items.append((arg_name, arg))
                pre_output.append((arg_name,
                                   self.infer_type(arg, node)))
                agg_name = f"agg{len(aggregates)}"
                aggregates.append((agg_name, fn, arg_name))
                return ast.Col(agg_name)
            if isinstance(expr, ast.BinOp):
                return ast.BinOp(expr.op, plan_agg_expr(expr.left),
                                 plan_agg_expr(expr.right))
            if isinstance(expr, ast.UnOp):
                return ast.UnOp(expr.op, plan_agg_expr(expr.operand))
            if isinstance(expr, ast.Col):
                if expr.name not in group_keys:
                    raise PlanError(
                        f"column {expr.name!r} must appear in GROUP BY "
                        f"or inside an aggregate")
                return expr
            if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StrLit,
                                 ast.DateLit)):
                return expr
            raise PlanError(
                f"unsupported expression over aggregates: {expr}")

        final_items: list[tuple[str, ast.Expr]] = []
        for item in items:
            name = self._item_name(item)
            final_items.append((name,
                                plan_agg_expr(_fold_constants(item.expr))))

        # HAVING may introduce aggregates of its own; rewrite it before the
        # pre-projection and group schemas are frozen.
        having_expr = None
        if select.having is not None:
            having_expr = plan_agg_expr(_fold_constants(select.having))

        if not pre_items:
            # count(*) with no keys and no aggregate arguments: carry one
            # child column so row counts stay observable downstream.
            first, first_type = node.output[0]
            pre_items.append((first, ast.Col(first)))
            pre_output.append((first, first_type))
        pre = p.Project(node, pre_items, output=pre_output)
        agg_output: list[tuple[str, ht.HorseType]] = []
        for key in group_keys:
            agg_output.append((key, pre.output_type(key)))
        for agg_name, fn, col in aggregates:
            if fn == "count":
                agg_output.append((agg_name, ht.I64))
            elif fn in ("sum", "avg"):
                agg_output.append((agg_name, ht.F64))
            else:
                agg_output.append((agg_name, pre.output_type(col)))
        group: p.PlanNode = p.GroupAggregate(pre, group_keys, aggregates,
                                             output=agg_output)

        if having_expr is not None:
            group = p.Filter(group, having_expr,
                             output=list(group.output))

        final_output = []
        for name, expr in final_items:
            final_output.append((name, self.infer_type(expr, group)))
        if self._is_identity_projection(final_items, group):
            return group
        return p.Project(group, final_items, output=final_output)

    # -- ORDER BY / LIMIT ----------------------------------------------------------

    def _plan_order_limit(self, select: ast.Select,
                          node: p.PlanNode) -> p.PlanNode:
        if select.order_by:
            keys: list[tuple[str, bool]] = []
            for expr, ascending in select.order_by:
                if not isinstance(expr, ast.Col):
                    raise PlanError(
                        "ORDER BY supports output columns only")
                if expr.name not in node.output_names():
                    raise PlanError(
                        f"ORDER BY column {expr.name!r} is not in the "
                        f"output")
                keys.append((expr.name, ascending))
            node = p.Sort(node, keys, output=list(node.output))
        if select.limit is not None:
            node = p.Limit(node, select.limit, output=list(node.output))
        return node


class _PendingCross(p.PlanNode):
    """Marker node for comma joins awaiting their WHERE equi-join keys."""

    def __init__(self, left: p.PlanNode, right: p.PlanNode):
        super().__init__(output=list(left.output) + list(right.output))
        self.left = left
        self.right = right

    def children(self) -> list[p.PlanNode]:
        return [self.left, self.right]

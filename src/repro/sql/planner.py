"""Logical planner: SQL AST → optimized plan tree.

Planning pipeline (the MonetDB stand-in's optimizer):

1. constant folding (``DATE '1998-12-01' - INTERVAL '90' DAY`` → a date);
2. FROM resolution: scans, derived tables, table-UDF calls, join clauses;
3. WHERE decomposition into conjuncts; equi-join conditions between two
   tables become hash-join keys, single-source conjuncts are **pushed
   down** below joins and through projections (predicate pushdown);
4. aggregation planning: aggregate arguments become computed columns in a
   pre-projection, then one GroupAggregate node;
5. **column pruning**: every node's column set shrinks to what its parent
   needs — except across TableUDF nodes, which are black boxes (the bs2
   experiment relies on exactly this asymmetry).

The planner treats scalar UDF calls as ordinary expressions (so they ride
inside Project/Filter nodes), mirroring how MonetDB plans UDF hooks.
"""

from __future__ import annotations

import numpy as np

from repro.core import types as ht
from repro.errors import PlanError
from repro.sql import ast
from repro.sql import plan as p
from repro.sql.catalog import Catalog
from repro.sql.udf import UDFRegistry

__all__ = ["plan_query"]


def plan_query(select: ast.Select, catalog: Catalog,
               udfs: UDFRegistry | None = None) -> p.PlanNode:
    """Plan a SELECT statement against ``catalog`` (+ registered UDFs)."""
    planner = _Planner(catalog, udfs or UDFRegistry())
    node = planner.plan_select(select)
    node = _prune_columns(node, set(node.output_names()))
    return node


# ---------------------------------------------------------------------------
# expression utilities
# ---------------------------------------------------------------------------

def _fold_constants(expr: ast.Expr) -> ast.Expr:
    """Fold date ± interval and numeric literal arithmetic."""
    if isinstance(expr, ast.BinOp):
        left = _fold_constants(expr.left)
        right = _fold_constants(expr.right)
        if isinstance(left, ast.DateLit) and isinstance(right,
                                                        ast.IntervalLit) \
                and expr.op in ("+", "-"):
            return _shift_date(left, right, expr.op)
        if isinstance(left, (ast.IntLit, ast.FloatLit)) \
                and isinstance(right, (ast.IntLit, ast.FloatLit)) \
                and expr.op in ("+", "-", "*", "/"):
            return _fold_numeric(left, right, expr.op)
        return ast.BinOp(expr.op, left, right)
    if isinstance(expr, ast.UnOp):
        operand = _fold_constants(expr.operand)
        if expr.op == "-" and isinstance(operand, ast.IntLit):
            return ast.IntLit(-operand.value)
        if expr.op == "-" and isinstance(operand, ast.FloatLit):
            return ast.FloatLit(-operand.value)
        return ast.UnOp(expr.op, operand)
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name,
                            [_fold_constants(a) for a in expr.args],
                            expr.distinct)
    if isinstance(expr, ast.CaseWhen):
        whens = [(_fold_constants(c), _fold_constants(v))
                 for c, v in expr.whens]
        else_expr = (_fold_constants(expr.else_expr)
                     if expr.else_expr is not None else None)
        return ast.CaseWhen(whens, else_expr)
    if isinstance(expr, ast.InList):
        return ast.InList(_fold_constants(expr.expr),
                          [_fold_constants(i) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_fold_constants(expr.expr),
                           _fold_constants(expr.low),
                           _fold_constants(expr.high), expr.negated)
    return expr


def _shift_date(date: ast.DateLit, interval: ast.IntervalLit,
                op: str) -> ast.DateLit:
    amount = interval.amount if op == "+" else -interval.amount
    value = np.datetime64(date.value, "D")
    if interval.unit == "day":
        value = value + np.timedelta64(amount, "D")
    elif interval.unit == "month":
        months = value.astype("datetime64[M]") + np.timedelta64(amount, "M")
        day = (value - value.astype("datetime64[M]").astype(
            "datetime64[D]")).astype(int)
        value = months.astype("datetime64[D]") + np.timedelta64(
            int(day), "D")
    else:  # year
        months = value.astype("datetime64[M]") + np.timedelta64(
            12 * amount, "M")
        day = (value - value.astype("datetime64[M]").astype(
            "datetime64[D]")).astype(int)
        value = months.astype("datetime64[D]") + np.timedelta64(
            int(day), "D")
    return ast.DateLit(str(value))


def _fold_numeric(left, right, op: str):
    a, b = left.value, right.value
    result = {"+": a + b, "-": a - b, "*": a * b,
              "/": a / b if b != 0 else float("nan")}[op]
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit) \
            and op != "/":
        return ast.IntLit(int(result))
    return ast.FloatLit(float(result))


def _expr_columns(expr: ast.Expr) -> set[str]:
    cols: set[str] = set()
    _collect_columns(expr, cols)
    return cols


def _collect_columns(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.Col):
        out.add(expr.name)
    elif isinstance(expr, ast.BinOp):
        _collect_columns(expr.left, out)
        _collect_columns(expr.right, out)
    elif isinstance(expr, ast.UnOp):
        _collect_columns(expr.operand, out)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _collect_columns(arg, out)
    elif isinstance(expr, ast.CaseWhen):
        for cond, value in expr.whens:
            _collect_columns(cond, out)
            _collect_columns(value, out)
        if expr.else_expr is not None:
            _collect_columns(expr.else_expr, out)
    elif isinstance(expr, ast.InList):
        _collect_columns(expr.expr, out)
        for item in expr.items:
            _collect_columns(item, out)
    elif isinstance(expr, ast.Between):
        _collect_columns(expr.expr, out)
        _collect_columns(expr.low, out)
        _collect_columns(expr.high, out)


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _and_all(conjuncts: list[ast.Expr]) -> ast.Expr:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinOp("and", result, conjunct)
    return result


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.name.lower() in ast.AGGREGATE_NAMES:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinOp):
        return _contains_aggregate(expr.left) \
            or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.CaseWhen):
        for cond, value in expr.whens:
            if _contains_aggregate(cond) or _contains_aggregate(value):
                return True
        return expr.else_expr is not None \
            and _contains_aggregate(expr.else_expr)
    return False


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

class _Planner:
    def __init__(self, catalog: Catalog, udfs: UDFRegistry):
        self.catalog = catalog
        self.udfs = udfs
        self._derived_count = 0

    # -- type inference over a node's schema -----------------------------------

    def infer_type(self, expr: ast.Expr,
                   node: p.PlanNode) -> ht.HorseType:
        if isinstance(expr, ast.Col):
            try:
                return node.output_type(expr.name)
            except KeyError:
                raise PlanError(f"unknown column {expr.name!r}; "
                                f"available: {node.output_names()}") \
                    from None
        if isinstance(expr, ast.IntLit):
            return ht.I64
        if isinstance(expr, ast.FloatLit):
            return ht.F64
        if isinstance(expr, ast.StrLit):
            return ht.STR
        if isinstance(expr, ast.DateLit):
            return ht.DATE
        if isinstance(expr, ast.UnOp):
            if expr.op == "not":
                return ht.BOOL
            return self.infer_type(expr.operand, node)
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or", "=", "<>", "<", "<=", ">", ">=",
                           "like"):
                return ht.BOOL
            if expr.op == "/":
                return ht.F64
            left = self.infer_type(expr.left, node)
            right = self.infer_type(expr.right, node)
            return ht.promote(left, right)
        if isinstance(expr, (ast.InList, ast.Between)):
            return ht.BOOL
        if isinstance(expr, ast.CaseWhen):
            result = self.infer_type(expr.whens[0][1], node)
            for _, value in expr.whens[1:]:
                result = ht.promote(result,
                                    self.infer_type(value, node))
            if expr.else_expr is not None:
                result = ht.promote(result, self.infer_type(
                    expr.else_expr, node))
            return result
        if isinstance(expr, ast.FuncCall):
            name = expr.name.lower()
            if name in ("sum", "avg"):
                return ht.F64
            if name == "count":
                return ht.I64
            if name in ("min", "max"):
                return self.infer_type(expr.args[0], node)
            if self.udfs.is_scalar(expr.name):
                return self.udfs.get(expr.name).ret_type
            raise PlanError(f"unknown function {expr.name!r}")
        raise PlanError(
            f"cannot type expression {type(expr).__name__}")

    # -- FROM ---------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> p.PlanNode:
        node = self._plan_from(select)
        conjuncts = [_fold_constants(c)
                     for c in _split_conjuncts(select.where)]
        node = self._apply_filters(node, conjuncts)
        node = self._plan_projection(select, node)
        node = self._plan_order_limit(select, node)
        return node

    def _plan_from(self, select: ast.Select) -> p.PlanNode:
        if not select.from_items:
            raise PlanError("queries without FROM are unsupported")
        nodes: list[p.PlanNode] = []
        join_clauses: list[tuple[p.PlanNode, ast.Expr]] = []
        for item in select.from_items:
            if isinstance(item, tuple) and item[0] == "join":
                _, right_ref, condition = item
                join_clauses.append((self._plan_from_item(right_ref),
                                     _fold_constants(condition)))
            else:
                nodes.append(self._plan_from_item(item))
        node = nodes[0]
        for other in nodes[1:]:
            # Comma join: keys are recovered from WHERE conjuncts later by
            # _apply_filters via _try_join_condition; start with a cross
            # join marker (rejected unless keys are found).
            node = _PendingCross(node, other)
        for right, condition in join_clauses:
            node = self._make_join(node, right, condition)
        return node

    def _plan_from_item(self, item) -> p.PlanNode:
        if isinstance(item, ast.TableRef):
            schema = self.catalog.table(item.name)
            return p.Scan(item.name, schema.column_names(),
                          output=list(schema.columns))
        if isinstance(item, ast.SubqueryRef):
            return self.plan_select(item.subquery)
        if isinstance(item, ast.TableUDFRef):
            child = self.plan_select(item.subquery)
            udf = self.udfs.get(item.name)
            if udf.kind != "table":
                raise PlanError(
                    f"{item.name!r} is a scalar UDF used in FROM")
            return p.TableUDF(child, udf.name,
                              list(child.output_names()),
                              output=list(udf.output_columns))
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _make_join(self, left: p.PlanNode, right: p.PlanNode,
                   condition: ast.Expr) -> p.Join:
        keys = self._join_keys(left, right, condition)
        if keys is None:
            raise PlanError(
                f"unsupported join condition {condition}; only "
                f"conjunctions of column equalities are supported")
        left_keys, right_keys = keys
        return p.Join(left, right, left_keys, right_keys, "inner",
                      output=list(left.output) + list(right.output))

    def _join_keys(self, left: p.PlanNode, right: p.PlanNode,
                   condition: ast.Expr):
        left_cols = set(left.output_names())
        right_cols = set(right.output_names())
        left_keys: list[str] = []
        right_keys: list[str] = []
        for conjunct in _split_conjuncts(condition):
            if not (isinstance(conjunct, ast.BinOp)
                    and conjunct.op == "="
                    and isinstance(conjunct.left, ast.Col)
                    and isinstance(conjunct.right, ast.Col)):
                return None
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_cols and b in right_cols:
                left_keys.append(a)
                right_keys.append(b)
            elif b in left_cols and a in right_cols:
                left_keys.append(b)
                right_keys.append(a)
            else:
                return None
        return (left_keys, right_keys)

    # -- WHERE / pushdown ------------------------------------------------------

    def _apply_filters(self, node: p.PlanNode,
                       conjuncts: list[ast.Expr]) -> p.PlanNode:
        node, leftovers = self._push_filters(node, conjuncts)
        if leftovers:
            node = p.Filter(node, _and_all(leftovers),
                            output=list(node.output))
        return node

    def _push_filters(self, node: p.PlanNode,
                      conjuncts: list[ast.Expr]):
        """Push each conjunct as deep as it can go; returns (node,
        not-pushed)."""
        if isinstance(node, _PendingCross):
            return self._resolve_cross(node, conjuncts)
        if isinstance(node, p.Join):
            remaining: list[ast.Expr] = []
            left_push: list[ast.Expr] = []
            right_push: list[ast.Expr] = []
            left_cols = set(node.left.output_names())
            right_cols = set(node.right.output_names())
            for conjunct in conjuncts:
                used = _expr_columns(conjunct)
                if self._references_udf(conjunct):
                    remaining.append(conjunct)
                elif used <= left_cols:
                    left_push.append(conjunct)
                elif used <= right_cols:
                    right_push.append(conjunct)
                else:
                    remaining.append(conjunct)
            left = self._apply_filters(node.left, left_push)
            right = self._apply_filters(node.right, right_push)
            new_join = p.Join(left, right, node.left_keys,
                              node.right_keys, node.kind,
                              output=list(node.output))
            return new_join, remaining
        if isinstance(node, p.Project) and conjuncts:
            # Push through when the conjunct only references columns the
            # projection passes through unchanged.
            passthrough = {name: expr.name for name, expr in node.items
                           if isinstance(expr, ast.Col)}
            pushed: list[ast.Expr] = []
            remaining = []
            for conjunct in conjuncts:
                used = _expr_columns(conjunct)
                if used <= set(passthrough) \
                        and not self._references_udf(conjunct):
                    pushed.append(_rename_columns(conjunct, passthrough))
                else:
                    remaining.append(conjunct)
            if pushed:
                child = self._apply_filters(node.child, pushed)
                node = p.Project(child, list(node.items),
                                 output=list(node.output))
            return node, remaining
        return node, list(conjuncts)

    def _resolve_cross(self, cross: "_PendingCross",
                       conjuncts: list[ast.Expr]):
        """Turn a comma join into a hash join using WHERE equalities."""
        left = cross.left
        right = cross.right
        if isinstance(left, _PendingCross):
            left, conjuncts = self._resolve_cross(left, conjuncts)
        if isinstance(right, _PendingCross):
            right, conjuncts = self._resolve_cross(right, conjuncts)
        left_cols = set(left.output_names())
        right_cols = set(right.output_names())
        key_conjuncts: list[ast.Expr] = []
        others: list[ast.Expr] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinOp) and conjunct.op == "=" \
                    and isinstance(conjunct.left, ast.Col) \
                    and isinstance(conjunct.right, ast.Col):
                a, b = conjunct.left.name, conjunct.right.name
                if (a in left_cols and b in right_cols) \
                        or (b in left_cols and a in right_cols):
                    key_conjuncts.append(conjunct)
                    continue
            others.append(conjunct)
        if not key_conjuncts:
            raise PlanError(
                "cross join without an equi-join condition in WHERE "
                "is unsupported")
        join = self._make_join(left, right, _and_all(key_conjuncts))
        return self._push_filters(join, others)

    def _references_udf(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FuncCall):
            if self.udfs.is_udf(expr.name):
                return True
            return any(self._references_udf(a) for a in expr.args)
        if isinstance(expr, ast.BinOp):
            return self._references_udf(expr.left) \
                or self._references_udf(expr.right)
        if isinstance(expr, ast.UnOp):
            return self._references_udf(expr.operand)
        if isinstance(expr, ast.CaseWhen):
            for cond, value in expr.whens:
                if self._references_udf(cond) \
                        or self._references_udf(value):
                    return True
            return expr.else_expr is not None \
                and self._references_udf(expr.else_expr)
        if isinstance(expr, ast.InList):
            return self._references_udf(expr.expr)
        if isinstance(expr, ast.Between):
            return self._references_udf(expr.expr)
        return False

    # -- SELECT list / aggregation ----------------------------------------------

    def _plan_projection(self, select: ast.Select,
                         node: p.PlanNode) -> p.PlanNode:
        items = self._expand_stars(select.items, node)
        has_aggregates = any(_contains_aggregate(item.expr)
                             for item in items)
        if select.having is not None \
                and not (has_aggregates or select.group_by):
            raise PlanError("HAVING requires GROUP BY or aggregates")
        if not has_aggregates and not select.group_by:
            plan_items = []
            output = []
            for item in items:
                name = self._item_name(item)
                expr = _fold_constants(item.expr)
                plan_items.append((name, expr))
                output.append((name, self.infer_type(expr, node)))
            if not self._is_identity_projection(plan_items, node):
                node = p.Project(node, plan_items, output=output)
            if select.distinct:
                node = self._plan_distinct(node)
            return node
        return self._plan_aggregation(select, items, node)

    @staticmethod
    def _plan_distinct(node: p.PlanNode) -> p.PlanNode:
        """SELECT DISTINCT: group on every output column, no aggregates."""
        return p.GroupAggregate(node, node.output_names(), [],
                                output=list(node.output))

    def _expand_stars(self, items: list[ast.SelectItem],
                      node: p.PlanNode) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for name in node.output_names():
                    expanded.append(ast.SelectItem(ast.Col(name), None))
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _is_identity_projection(plan_items, node: p.PlanNode) -> bool:
        names = node.output_names()
        return (len(plan_items) == len(names)
                and all(isinstance(expr, ast.Col) and expr.name == name
                        and name == names[i]
                        for i, (name, expr) in enumerate(plan_items)))

    def _item_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Col):
            return item.expr.name
        self._derived_count += 1
        return f"col{self._derived_count}"

    def _plan_aggregation(self, select: ast.Select,
                          items: list[ast.SelectItem],
                          node: p.PlanNode) -> p.PlanNode:
        group_keys: list[str] = []
        for expr in select.group_by:
            folded = _fold_constants(expr)
            if not isinstance(folded, ast.Col):
                raise PlanError(
                    "GROUP BY supports plain columns only")
            group_keys.append(folded.name)

        # Stage 1: a pre-projection computing every aggregate argument and
        # passing group keys through.
        pre_items: list[tuple[str, ast.Expr]] = []
        pre_output: list[tuple[str, ht.HorseType]] = []
        for key in group_keys:
            pre_items.append((key, ast.Col(key)))
            pre_output.append((key, node.output_type(key)))

        aggregates: list[tuple[str, str, str | None]] = []
        post_exprs: list[tuple[str, ast.Expr, ht.HorseType]] = []

        def plan_agg_expr(expr: ast.Expr) -> ast.Expr:
            """Replace aggregate calls with references to agg outputs."""
            if isinstance(expr, ast.FuncCall) \
                    and expr.name.lower() in ast.AGGREGATE_NAMES:
                fn = expr.name.lower()
                if fn == "count" and (not expr.args or isinstance(
                        expr.args[0], ast.Star)):
                    agg_name = f"agg{len(aggregates)}"
                    aggregates.append((agg_name, "count", None))
                    return ast.Col(agg_name)
                arg = _fold_constants(expr.args[0])
                arg_name = f"aggin{len(pre_items)}"
                pre_items.append((arg_name, arg))
                pre_output.append((arg_name,
                                   self.infer_type(arg, node)))
                agg_name = f"agg{len(aggregates)}"
                aggregates.append((agg_name, fn, arg_name))
                return ast.Col(agg_name)
            if isinstance(expr, ast.BinOp):
                return ast.BinOp(expr.op, plan_agg_expr(expr.left),
                                 plan_agg_expr(expr.right))
            if isinstance(expr, ast.UnOp):
                return ast.UnOp(expr.op, plan_agg_expr(expr.operand))
            if isinstance(expr, ast.Col):
                if expr.name not in group_keys:
                    raise PlanError(
                        f"column {expr.name!r} must appear in GROUP BY "
                        f"or inside an aggregate")
                return expr
            if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StrLit,
                                 ast.DateLit)):
                return expr
            raise PlanError(
                f"unsupported expression over aggregates: {expr}")

        final_items: list[tuple[str, ast.Expr]] = []
        for item in items:
            name = self._item_name(item)
            final_items.append((name,
                                plan_agg_expr(_fold_constants(item.expr))))

        # HAVING may introduce aggregates of its own; rewrite it before the
        # pre-projection and group schemas are frozen.
        having_expr = None
        if select.having is not None:
            having_expr = plan_agg_expr(_fold_constants(select.having))

        if not pre_items:
            # count(*) with no keys and no aggregate arguments: carry one
            # child column so row counts stay observable downstream.
            first, first_type = node.output[0]
            pre_items.append((first, ast.Col(first)))
            pre_output.append((first, first_type))
        pre = p.Project(node, pre_items, output=pre_output)
        agg_output: list[tuple[str, ht.HorseType]] = []
        for key in group_keys:
            agg_output.append((key, pre.output_type(key)))
        for agg_name, fn, col in aggregates:
            if fn == "count":
                agg_output.append((agg_name, ht.I64))
            elif fn in ("sum", "avg"):
                agg_output.append((agg_name, ht.F64))
            else:
                agg_output.append((agg_name, pre.output_type(col)))
        group: p.PlanNode = p.GroupAggregate(pre, group_keys, aggregates,
                                             output=agg_output)

        if having_expr is not None:
            group = p.Filter(group, having_expr,
                             output=list(group.output))

        final_output = []
        for name, expr in final_items:
            final_output.append((name, self.infer_type(expr, group)))
        if self._is_identity_projection(final_items, group):
            return group
        return p.Project(group, final_items, output=final_output)

    # -- ORDER BY / LIMIT ----------------------------------------------------------

    def _plan_order_limit(self, select: ast.Select,
                          node: p.PlanNode) -> p.PlanNode:
        if select.order_by:
            keys: list[tuple[str, bool]] = []
            for expr, ascending in select.order_by:
                if not isinstance(expr, ast.Col):
                    raise PlanError(
                        "ORDER BY supports output columns only")
                if expr.name not in node.output_names():
                    raise PlanError(
                        f"ORDER BY column {expr.name!r} is not in the "
                        f"output")
                keys.append((expr.name, ascending))
            node = p.Sort(node, keys, output=list(node.output))
        if select.limit is not None:
            node = p.Limit(node, select.limit, output=list(node.output))
        return node


class _PendingCross(p.PlanNode):
    """Marker node for comma joins awaiting their WHERE equi-join keys."""

    def __init__(self, left: p.PlanNode, right: p.PlanNode):
        super().__init__(output=list(left.output) + list(right.output))
        self.left = left
        self.right = right

    def children(self) -> list[p.PlanNode]:
        return [self.left, self.right]


def _rename_columns(expr: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Col):
        return ast.Col(mapping.get(expr.name, expr.name))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _rename_columns(expr.left, mapping),
                         _rename_columns(expr.right, mapping))
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _rename_columns(expr.operand, mapping))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name,
                            [_rename_columns(a, mapping)
                             for a in expr.args], expr.distinct)
    if isinstance(expr, ast.CaseWhen):
        whens = [(_rename_columns(c, mapping), _rename_columns(v, mapping))
                 for c, v in expr.whens]
        else_expr = (_rename_columns(expr.else_expr, mapping)
                     if expr.else_expr is not None else None)
        return ast.CaseWhen(whens, else_expr)
    if isinstance(expr, ast.InList):
        return ast.InList(_rename_columns(expr.expr, mapping),
                          list(expr.items), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_rename_columns(expr.expr, mapping),
                           expr.low, expr.high, expr.negated)
    return expr


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------

def _prune_columns(node: p.PlanNode, needed: set[str]) -> p.PlanNode:
    """Shrink every node's outputs to ``needed`` (never crossing
    TableUDF)."""
    if isinstance(node, p.Scan):
        keep = [c for c in node.columns if c in needed]
        if not keep and node.columns:
            keep = [node.columns[0]]  # keep row counts observable
            needed = needed | {keep[0]}
        return p.Scan(node.table, keep,
                      output=[(n, t) for n, t in node.output
                              if n in needed])
    if isinstance(node, p.Filter):
        child_needed = needed | _expr_columns(node.predicate)
        child = _prune_columns(node.child, child_needed)
        return p.Filter(child, node.predicate,
                        output=[(n, t) for n, t in node.output
                                if n in needed])
    if isinstance(node, p.Project):
        keep_items = [(name, expr) for name, expr in node.items
                      if name in needed]
        if not keep_items and node.items:
            keep_items = [node.items[0]]  # keep row counts observable
            needed = needed | {keep_items[0][0]}
        child_needed: set[str] = set()
        for _, expr in keep_items:
            child_needed |= _expr_columns(expr)
        child = _prune_columns(node.child, child_needed)
        return p.Project(child, keep_items,
                         output=[(n, t) for n, t in node.output
                                 if n in needed])
    if isinstance(node, p.Join):
        left_names = set(node.left.output_names())
        right_names = set(node.right.output_names())
        left_needed = (needed & left_names) | set(node.left_keys)
        right_needed = (needed & right_names) | set(node.right_keys)
        left = _prune_columns(node.left, left_needed)
        right = _prune_columns(node.right, right_needed)
        return p.Join(left, right, node.left_keys, node.right_keys,
                      node.kind,
                      output=[(n, t) for n, t in node.output
                              if n in needed])
    if isinstance(node, p.GroupAggregate):
        child_needed = set(node.keys)
        keep_aggs = []
        for name, fn, col in node.aggregates:
            if name in needed:
                keep_aggs.append((name, fn, col))
                if col is not None:
                    child_needed.add(col)
        if not keep_aggs and node.aggregates:
            # Keep one aggregate so group cardinality is observable.
            name, fn, col = node.aggregates[0]
            keep_aggs.append((name, fn, col))
            if col is not None:
                child_needed.add(col)
        child = _prune_columns(node.child, child_needed)
        return p.GroupAggregate(child, node.keys, keep_aggs,
                                output=[(n, t) for n, t in node.output
                                        if n in needed
                                        or n in node.keys])
    if isinstance(node, p.Sort):
        child_needed = needed | {name for name, _ in node.keys}
        child = _prune_columns(node.child, child_needed)
        return p.Sort(child, node.keys,
                      output=[(n, t) for n, t in node.output
                              if n in child_needed or n in needed])
    if isinstance(node, p.Limit):
        child = _prune_columns(node.child, needed)
        return p.Limit(child, node.count, output=list(child.output))
    if isinstance(node, p.TableUDF):
        # Black box: every declared input column must be produced and
        # every declared output is computed, regardless of `needed`.
        child = _prune_columns(node.child, set(node.input_columns))
        return p.TableUDF(child, node.udf_name, node.input_columns,
                          output=list(node.output))
    raise PlanError(f"cannot prune {type(node).__name__}")

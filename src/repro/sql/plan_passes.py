"""Plan-level rewrite passes: predicate pushdown and column pruning.

Historically these two rules were private functions buried inside
:mod:`repro.sql.planner`; the pass-manager refactor makes them
first-class plan-level passes on the same
:class:`~repro.core.passes.PassManager` that runs the HorseIR rewrites
(the paper's "one optimizer across the SQL/UDF boundary").  The
planner now builds a *raw* plan — every WHERE conjunct in one
``Filter`` directly above the join tree — and
:func:`repro.sql.planner.plan_query` applies these passes through the
pipeline:

* :func:`push_predicates` — each ``Filter``'s conjuncts sink as deep
  as they can go: below hash joins (single-side conjuncts), through
  projections that pass the referenced columns through unchanged
  (with renaming), never through aggregates, table UDFs, or other
  filters, and never when the conjunct calls a UDF.  A filter whose
  conjuncts all stay put is returned *unchanged*, preserving the
  original predicate tree (HAVING predicates keep their shape).
* :func:`prune_columns` — every node's column set shrinks to what its
  parent needs — except across ``TableUDF`` nodes, which are black
  boxes (the bs2 experiment relies on exactly this asymmetry).

Both are pure tree transforms over :mod:`repro.sql.plan` nodes with
SQL AST predicates; they know nothing about the manager that schedules
them.  The shared expression utilities (conjunct splitting, column
collection, renaming) live here and are imported back by the planner.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.sql import ast
from repro.sql import plan as p
from repro.sql.udf import UDFRegistry

__all__ = ["push_predicates", "prune_columns", "reorder_by_selectivity",
           "find_filters_without_columns", "find_unfiltered_cross_joins",
           "find_unlimited_sorts"]


# ---------------------------------------------------------------------------
# expression utilities (shared with the planner)
# ---------------------------------------------------------------------------

def _expr_columns(expr: ast.Expr) -> set[str]:
    cols: set[str] = set()
    _collect_columns(expr, cols)
    return cols


def _collect_columns(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.Col):
        out.add(expr.name)
    elif isinstance(expr, ast.BinOp):
        _collect_columns(expr.left, out)
        _collect_columns(expr.right, out)
    elif isinstance(expr, ast.UnOp):
        _collect_columns(expr.operand, out)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _collect_columns(arg, out)
    elif isinstance(expr, ast.CaseWhen):
        for cond, value in expr.whens:
            _collect_columns(cond, out)
            _collect_columns(value, out)
        if expr.else_expr is not None:
            _collect_columns(expr.else_expr, out)
    elif isinstance(expr, ast.InList):
        _collect_columns(expr.expr, out)
        for item in expr.items:
            _collect_columns(item, out)
    elif isinstance(expr, ast.Between):
        _collect_columns(expr.expr, out)
        _collect_columns(expr.low, out)
        _collect_columns(expr.high, out)


def _split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _and_all(conjuncts: list[ast.Expr]) -> ast.Expr:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinOp("and", result, conjunct)
    return result


def _rename_columns(expr: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.Col):
        return ast.Col(mapping.get(expr.name, expr.name))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _rename_columns(expr.left, mapping),
                         _rename_columns(expr.right, mapping))
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _rename_columns(expr.operand, mapping))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name,
                            [_rename_columns(a, mapping)
                             for a in expr.args], expr.distinct)
    if isinstance(expr, ast.CaseWhen):
        whens = [(_rename_columns(c, mapping), _rename_columns(v, mapping))
                 for c, v in expr.whens]
        else_expr = (_rename_columns(expr.else_expr, mapping)
                     if expr.else_expr is not None else None)
        return ast.CaseWhen(whens, else_expr)
    if isinstance(expr, ast.InList):
        return ast.InList(_rename_columns(expr.expr, mapping),
                          list(expr.items), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_rename_columns(expr.expr, mapping),
                           expr.low, expr.high, expr.negated)
    return expr


def _references_udf(expr: ast.Expr, udfs: UDFRegistry) -> bool:
    if isinstance(expr, ast.FuncCall):
        if udfs.is_udf(expr.name):
            return True
        return any(_references_udf(a, udfs) for a in expr.args)
    if isinstance(expr, ast.BinOp):
        return _references_udf(expr.left, udfs) \
            or _references_udf(expr.right, udfs)
    if isinstance(expr, ast.UnOp):
        return _references_udf(expr.operand, udfs)
    if isinstance(expr, ast.CaseWhen):
        for cond, value in expr.whens:
            if _references_udf(cond, udfs) \
                    or _references_udf(value, udfs):
                return True
        return expr.else_expr is not None \
            and _references_udf(expr.else_expr, udfs)
    if isinstance(expr, ast.InList):
        return _references_udf(expr.expr, udfs)
    if isinstance(expr, ast.Between):
        return _references_udf(expr.expr, udfs)
    return False


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------

def push_predicates(plan: p.PlanNode,
                    udfs: UDFRegistry | None = None) -> p.PlanNode:
    """Sink every ``Filter``'s conjuncts as deep as they can go.

    Post-order: inner subtrees (subquery plans) settle before an outer
    filter tries to cross them — the same order the per-SELECT planner
    recursion used to impose."""
    udfs = udfs if udfs is not None else UDFRegistry()
    return _pushdown(plan, udfs)


def _pushdown(node: p.PlanNode, udfs: UDFRegistry) -> p.PlanNode:
    _visit_children(node, udfs)
    if isinstance(node, p.Filter):
        conjuncts = _split_conjuncts(node.predicate)
        child, leftovers = _push_filters(node.child, conjuncts, udfs)
        if len(leftovers) == len(conjuncts):
            # Nothing moved: keep the original node so the predicate's
            # expression tree (e.g. a HAVING condition) is untouched.
            return node
        if leftovers:
            return p.Filter(child, _and_all(leftovers),
                            output=list(child.output))
        return child
    return node


def _visit_children(node: p.PlanNode, udfs: UDFRegistry) -> None:
    if isinstance(node, p.Join):
        node.left = _pushdown(node.left, udfs)
        node.right = _pushdown(node.right, udfs)
    elif isinstance(node, (p.Filter, p.Project, p.GroupAggregate,
                           p.Sort, p.Limit, p.TableUDF)):
        node.child = _pushdown(node.child, udfs)


def _apply_filters(node: p.PlanNode, conjuncts: list[ast.Expr],
                   udfs: UDFRegistry) -> p.PlanNode:
    node, leftovers = _push_filters(node, conjuncts, udfs)
    if leftovers:
        node = p.Filter(node, _and_all(leftovers),
                        output=list(node.output))
    return node


def _push_filters(node: p.PlanNode, conjuncts: list[ast.Expr],
                  udfs: UDFRegistry):
    """Push each conjunct as deep as it can go; returns (node,
    not-pushed)."""
    if isinstance(node, p.Join):
        remaining: list[ast.Expr] = []
        left_push: list[ast.Expr] = []
        right_push: list[ast.Expr] = []
        left_cols = set(node.left.output_names())
        right_cols = set(node.right.output_names())
        for conjunct in conjuncts:
            used = _expr_columns(conjunct)
            if _references_udf(conjunct, udfs):
                remaining.append(conjunct)
            elif used <= left_cols:
                left_push.append(conjunct)
            elif used <= right_cols:
                right_push.append(conjunct)
            else:
                remaining.append(conjunct)
        left = _apply_filters(node.left, left_push, udfs)
        right = _apply_filters(node.right, right_push, udfs)
        new_join = p.Join(left, right, node.left_keys,
                          node.right_keys, node.kind,
                          output=list(node.output))
        return new_join, remaining
    if isinstance(node, p.Project) and conjuncts:
        # Push through when the conjunct only references columns the
        # projection passes through unchanged.
        passthrough = {name: expr.name for name, expr in node.items
                       if isinstance(expr, ast.Col)}
        pushed: list[ast.Expr] = []
        remaining = []
        for conjunct in conjuncts:
            used = _expr_columns(conjunct)
            if used <= set(passthrough) \
                    and not _references_udf(conjunct, udfs):
                pushed.append(_rename_columns(conjunct, passthrough))
            else:
                remaining.append(conjunct)
        if pushed:
            child = _apply_filters(node.child, pushed, udfs)
            node = p.Project(child, list(node.items),
                             output=list(node.output))
        return node, remaining
    return node, list(conjuncts)


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------

def prune_columns(plan: p.PlanNode,
                  udfs: UDFRegistry | None = None) -> p.PlanNode:
    """Shrink every node's outputs to what the root produces."""
    return _prune_columns(plan, set(plan.output_names()))


def _prune_columns(node: p.PlanNode, needed: set[str]) -> p.PlanNode:
    """Shrink every node's outputs to ``needed`` (never crossing
    TableUDF)."""
    if isinstance(node, p.Scan):
        keep = [c for c in node.columns if c in needed]
        if not keep and node.columns:
            keep = [node.columns[0]]  # keep row counts observable
            needed = needed | {keep[0]}
        return p.Scan(node.table, keep,
                      output=[(n, t) for n, t in node.output
                              if n in needed])
    if isinstance(node, p.Filter):
        child_needed = needed | _expr_columns(node.predicate)
        child = _prune_columns(node.child, child_needed)
        return p.Filter(child, node.predicate,
                        output=[(n, t) for n, t in node.output
                                if n in needed])
    if isinstance(node, p.Project):
        keep_items = [(name, expr) for name, expr in node.items
                      if name in needed]
        if not keep_items and node.items:
            keep_items = [node.items[0]]  # keep row counts observable
            needed = needed | {keep_items[0][0]}
        child_needed: set[str] = set()
        for _, expr in keep_items:
            child_needed |= _expr_columns(expr)
        child = _prune_columns(node.child, child_needed)
        return p.Project(child, keep_items,
                         output=[(n, t) for n, t in node.output
                                 if n in needed])
    if isinstance(node, p.Join):
        left_names = set(node.left.output_names())
        right_names = set(node.right.output_names())
        left_needed = (needed & left_names) | set(node.left_keys)
        right_needed = (needed & right_names) | set(node.right_keys)
        left = _prune_columns(node.left, left_needed)
        right = _prune_columns(node.right, right_needed)
        return p.Join(left, right, node.left_keys, node.right_keys,
                      node.kind,
                      output=[(n, t) for n, t in node.output
                              if n in needed])
    if isinstance(node, p.GroupAggregate):
        child_needed = set(node.keys)
        keep_aggs = []
        for name, fn, col in node.aggregates:
            if name in needed:
                keep_aggs.append((name, fn, col))
                if col is not None:
                    child_needed.add(col)
        if not keep_aggs and node.aggregates:
            # Keep one aggregate so group cardinality is observable.
            name, fn, col = node.aggregates[0]
            keep_aggs.append((name, fn, col))
            if col is not None:
                child_needed.add(col)
        child = _prune_columns(node.child, child_needed)
        return p.GroupAggregate(child, node.keys, keep_aggs,
                                output=[(n, t) for n, t in node.output
                                        if n in needed
                                        or n in node.keys])
    if isinstance(node, p.Sort):
        child_needed = needed | {name for name, _ in node.keys}
        child = _prune_columns(node.child, child_needed)
        return p.Sort(child, node.keys,
                      output=[(n, t) for n, t in node.output
                              if n in child_needed or n in needed])
    if isinstance(node, p.Limit):
        child = _prune_columns(node.child, needed)
        return p.Limit(child, node.count, output=list(child.output))
    if isinstance(node, p.TableUDF):
        # Black box: every declared input column must be produced and
        # every declared output is computed, regardless of `needed`.
        child = _prune_columns(node.child, set(node.input_columns))
        return p.TableUDF(child, node.udf_name, node.input_columns,
                          output=list(node.output))
    raise PlanError(f"cannot prune {type(node).__name__}")


# ---------------------------------------------------------------------------
# statistics-driven reordering
# ---------------------------------------------------------------------------

def reorder_by_selectivity(plan: p.PlanNode,
                           udfs: UDFRegistry | None = None,
                           table_stats=None) -> p.PlanNode:
    """Order filter conjuncts and join build/probe sides by estimated
    selectivity (the ``selectivity-reorder`` pass).

    * Each ``Filter``'s conjuncts are stable-sorted most-selective
      first, so short-circuiting executors reject rows as early as
      possible.  Reordering an ``AND`` chain never changes the mask it
      computes — output stays bit-identical.
    * Each *inner* ``Join`` puts the smaller estimated input on the
      **right**: ``@join_index`` builds its hash table on the right
      input and probes with the left, so the build table should be the
      small one.  Output columns are selected by name, so swapping
      sides preserves the schema (row order may differ, as permitted
      for an unordered join).

    Without statistics (``table_stats`` is ``None`` or empty) the plan
    is returned *unchanged* — same object — so pipelines that include
    this pass are inert until the first ``ANALYZE``."""
    if not table_stats:
        return plan
    return _reorder(plan, table_stats)


def _reorder(node: p.PlanNode, store) -> p.PlanNode:
    # Imported lazily: repro.stats imports repro.sql.plan; keeping the
    # estimator out of this module's import time avoids the cycle.
    from repro.stats.estimate import estimate_rows, predicate_selectivity

    if isinstance(node, p.Filter):
        child = _reorder(node.child, store)
        conjuncts = _split_conjuncts(node.predicate)
        if len(conjuncts) > 1:
            ranked = sorted(
                range(len(conjuncts)),
                key=lambda i: (predicate_selectivity(conjuncts[i],
                                                     child, store), i))
            if ranked != list(range(len(conjuncts))):
                ordered = _and_all([conjuncts[i] for i in ranked])
                return p.Filter(child, ordered,
                                output=list(node.output))
        if child is node.child:
            return node
        return p.Filter(child, node.predicate,
                        output=list(node.output))
    if isinstance(node, p.Join):
        left = _reorder(node.left, store)
        right = _reorder(node.right, store)
        if node.kind == "inner":
            left_est = estimate_rows(left, store)
            right_est = estimate_rows(right, store)
            if left_est is not None and right_est is not None \
                    and left_est < right_est:
                return p.Join(right, left, list(node.right_keys),
                              list(node.left_keys), node.kind,
                              output=list(node.output))
        if left is node.left and right is node.right:
            return node
        return p.Join(left, right, node.left_keys, node.right_keys,
                      node.kind, output=list(node.output))
    if isinstance(node, (p.Project, p.GroupAggregate, p.Sort, p.Limit,
                         p.TableUDF)):
        child = _reorder(node.child, store)
        if child is not node.child:
            node.child = child
        return node
    return node


# ---------------------------------------------------------------------------
# Plan lint detectors (consumed by repro.core.analysis.lint)
# ---------------------------------------------------------------------------

def _plan_children(node: p.PlanNode) -> list[p.PlanNode]:
    if isinstance(node, p.Join):
        return [node.left, node.right]
    child = getattr(node, "child", None)
    return [child] if child is not None else []


def _walk_plan(node: p.PlanNode, ancestors: tuple = ()):
    """Yield ``(node, ancestors)`` pairs, root first (ancestors are
    ordered nearest-first)."""
    yield node, ancestors
    for child in _plan_children(node):
        yield from _walk_plan(child, (node,) + ancestors)


def find_filters_without_columns(plan: p.PlanNode) -> list[tuple]:
    """``(location, message)`` for every Filter whose predicate
    references no column its child produces — a predicate that can
    only be constant-true or constant-false (usually a typo'd name
    that slipped past resolution, or a degenerate rewrite)."""
    findings = []
    for node, _ in _walk_plan(plan):
        if not isinstance(node, p.Filter):
            continue
        referenced = _expr_columns(node.predicate)
        available = set(node.child.output_names())
        if referenced and not (referenced & available):
            missing = ", ".join(sorted(referenced))
            findings.append(
                (node.describe(),
                 f"filter references no column of its input "
                 f"(uses: {missing})"))
        elif not referenced:
            findings.append(
                (node.describe(),
                 "filter predicate references no columns at all "
                 "(constant predicate)"))
    return findings


def find_unfiltered_cross_joins(plan: p.PlanNode) -> list[tuple]:
    """``(location, message)`` for every keyless (cross) join with no
    Filter anywhere above it — a full Cartesian product whose output
    nothing ever narrows."""
    findings = []
    for node, ancestors in _walk_plan(plan):
        if not isinstance(node, p.Join):
            continue
        if node.left_keys or node.right_keys:
            continue
        if any(isinstance(a, p.Filter) for a in ancestors):
            continue
        findings.append(
            (node.describe(),
             "cross join (no keys) with no follow-up filter: "
             "produces the full Cartesian product"))
    return findings


def find_unlimited_sorts(plan: p.PlanNode) -> list[tuple]:
    """``(location, message)`` for every Sort with no Limit above it —
    a full sort where a top-k pass would do.  Informational: ORDER BY
    without LIMIT is legitimate SQL, so the lint rule carrying this
    detector is off by default."""
    findings = []
    for node, ancestors in _walk_plan(plan):
        if not isinstance(node, p.Sort):
            continue
        if any(isinstance(a, p.Limit) for a in ancestors):
            continue
        findings.append(
            (node.describe(),
             "full sort with no LIMIT above it (top-k would avoid "
             "sorting the whole input)"))
    return findings

"""JSON plan → HorseIR translator (paper Section 3.1 / 3.3).

Consumes the JSON form of a logical plan (the stand-in for MonetDB's plan
trees converted to JSON) and emits a HorseIR ``main`` method:

* scans become ``@load_table`` + ``@column_value`` + ``check_cast``;
* filters become a predicate expression followed by one ``@compress`` per
  live column — exactly the Figure 2b shape;
* joins become ``@join_index`` + ``@index`` materialization;
* grouping becomes ``@group`` + segmented aggregates;
* scalar UDF calls become *method invocations* (placeholders inlined later
  by the optimizer);
* table UDF calls become a method invocation returning a list of columns,
  destructured with ``@list_item``.
"""

from __future__ import annotations

from repro.core import ir
from repro.core import types as ht
from repro.errors import PlanError
from repro.sql.udf import UDFRegistry

import numpy as np

__all__ = ["json_plan_to_method", "json_plan_to_module"]

_CMP_OPS = {"=": "eq", "<>": "neq", "<": "lt", "<=": "leq",
            ">": "gt", ">=": "geq"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div"}


def json_plan_to_module(plan_json: dict, udfs: UDFRegistry | None = None,
                        module_name: str = "Query") -> ir.Module:
    """Wrap the translated ``main`` method in a fresh module."""
    module = ir.Module(module_name)
    module.add(json_plan_to_method(plan_json, udfs))
    return module


def json_plan_to_method(plan_json: dict,
                        udfs: UDFRegistry | None = None) -> ir.Method:
    translator = _Translator(udfs or UDFRegistry())
    columns = translator.translate(plan_json)
    output_names = [name for name, _ in plan_json["output"]]
    stmts = translator.stmts

    name_atoms: list[ir.Expr] = [ir.SymbolLit(n) for n in output_names]
    names_var = translator.fresh("names")
    stmts.append(ir.Assign(names_var, ht.SYM,
                           ir.BuiltinCall("concat", name_atoms)))
    cols_var = translator.fresh("cols")
    stmts.append(ir.Assign(
        cols_var, ht.list_of(ht.WILDCARD),
        ir.BuiltinCall("list", [ir.Var(columns[n])
                                for n in output_names])))
    result_var = translator.fresh("result")
    stmts.append(ir.Assign(result_var, ht.TABLE,
                           ir.BuiltinCall("table", [ir.Var(names_var),
                                                    ir.Var(cols_var)])))
    stmts.append(ir.Return(ir.Var(result_var)))
    return ir.Method("main", [], ht.TABLE, stmts)


class _Translator:
    def __init__(self, udfs: UDFRegistry):
        self.udfs = udfs
        self.stmts: list[ir.Stmt] = []
        self._counter = 0

    def fresh(self, hint: str = "t") -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def emit(self, hint: str, type_: ht.HorseType,
             expr: ir.Expr) -> str:
        name = self.fresh(hint)
        self.stmts.append(ir.Assign(name, type_, expr))
        return name

    # -- node dispatch --------------------------------------------------------

    def translate(self, node: dict) -> dict[str, str]:
        """Translate a plan node; returns column-name → variable map."""
        op = node["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise PlanError(f"no translation for plan op {op!r}")
        return handler(node)

    def _output_types(self, node: dict) -> dict[str, ht.HorseType]:
        return {name: ht.parse_type(spelling)
                for name, spelling in node["output"]}

    def _op_scan(self, node: dict) -> dict[str, str]:
        types = self._output_types(node)
        table_var = self.emit(
            "tbl", ht.TABLE,
            ir.BuiltinCall("load_table", [ir.SymbolLit(node["table"])]))
        columns: dict[str, str] = {}
        for column in node["columns"]:
            type_ = types.get(column, ht.WILDCARD)
            raw = ir.BuiltinCall("column_value",
                                 [ir.Var(table_var),
                                  ir.SymbolLit(column)])
            columns[column] = self.emit("c", type_, ir.Cast(raw, type_)
                                        if not type_.is_wildcard else raw)
        return columns

    def _op_filter(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        mask = self._expr(node["predicate"], columns, child_types)
        mask_var = self._as_var(mask, ht.BOOL, "mask")
        out: dict[str, str] = {}
        for name, _ in node["output"]:
            out[name] = self.emit(
                "f", child_types.get(name, ht.WILDCARD),
                ir.BuiltinCall("compress", [ir.Var(mask_var),
                                            ir.Var(columns[name])]))
        return out

    def _op_project(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        types = self._output_types(node)
        out: dict[str, str] = {}
        for name, expr_json in node["items"]:
            expr = self._expr(expr_json, columns, child_types)
            out[name] = self._as_var(expr, types.get(name, ht.WILDCARD),
                                     "p")
        return out

    def _op_join(self, node: dict) -> dict[str, str]:
        if node["kind"] != "inner":
            raise PlanError(f"unsupported join kind {node['kind']!r}")
        left_cols = self.translate(node["left"])
        right_cols = self.translate(node["right"])
        left_types = self._output_types(node["left"])
        right_types = self._output_types(node["right"])

        left_keys = self._key_list(node["left_keys"], left_cols)
        right_keys = self._key_list(node["right_keys"], right_cols)
        index_pair = self.emit(
            "ji", ht.list_of(ht.I64),
            ir.BuiltinCall("join_index",
                           [left_keys, right_keys,
                            ir.SymbolLit("inner")]))
        left_index = self.emit(
            "li", ht.I64,
            ir.BuiltinCall("list_item", [ir.Var(index_pair),
                                         ir.Literal(0, ht.I64)]))
        right_index = self.emit(
            "ri", ht.I64,
            ir.BuiltinCall("list_item", [ir.Var(index_pair),
                                         ir.Literal(1, ht.I64)]))

        out: dict[str, str] = {}
        for name, _ in node["output"]:
            if name in left_cols:
                out[name] = self.emit(
                    "j", left_types.get(name, ht.WILDCARD),
                    ir.BuiltinCall("index", [ir.Var(left_cols[name]),
                                             ir.Var(left_index)]))
            else:
                out[name] = self.emit(
                    "j", right_types.get(name, ht.WILDCARD),
                    ir.BuiltinCall("index", [ir.Var(right_cols[name]),
                                             ir.Var(right_index)]))
        return out

    def _key_list(self, keys: list[str],
                  columns: dict[str, str]) -> ir.Expr:
        if len(keys) == 1:
            return ir.Var(columns[keys[0]])
        return ir.BuiltinCall("list",
                              [ir.Var(columns[k]) for k in keys])

    def _op_group(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        types = self._output_types(node)
        keys: list[str] = node["keys"]
        out: dict[str, str] = {}

        if not keys:
            return self._global_aggregates(node, columns, child_types)

        group = self.emit(
            "g", ht.list_of(ht.I64),
            ir.BuiltinCall("group", [ir.Var(columns[k]) for k in keys]))
        key_index = self.emit(
            "ki", ht.I64,
            ir.BuiltinCall("list_item", [ir.Var(group),
                                         ir.Literal(0, ht.I64)]))
        codes = self.emit(
            "gid", ht.I64,
            ir.BuiltinCall("list_item", [ir.Var(group),
                                         ir.Literal(1, ht.I64)]))
        ngroups = self.emit(
            "ng", ht.I64, ir.BuiltinCall("len", [ir.Var(key_index)]))

        for key in keys:
            out[key] = self.emit(
                "k", child_types.get(key, ht.WILDCARD),
                ir.BuiltinCall("index", [ir.Var(columns[key]),
                                         ir.Var(key_index)]))
        for name, fn, column in node["aggregates"]:
            if fn == "count":
                values = codes
            else:
                values = columns[column]
            builtin = {"sum": "group_sum", "avg": "group_avg",
                       "min": "group_min", "max": "group_max",
                       "count": "group_count"}[fn]
            out[name] = self.emit(
                "a", types.get(name, ht.WILDCARD),
                ir.BuiltinCall(builtin, [ir.Var(values), ir.Var(codes),
                                         ir.Var(ngroups)]))
        return out

    def _global_aggregates(self, node: dict, columns: dict[str, str],
                           child_types) -> dict[str, str]:
        types = self._output_types(node)
        out: dict[str, str] = {}
        for name, fn, column in node["aggregates"]:
            if fn == "count":
                target = column if column is not None \
                    else next(iter(columns), None)
                if target is None:
                    raise PlanError("count(*) over an empty projection")
                out[name] = self.emit(
                    "a", ht.I64,
                    ir.BuiltinCall("len", [ir.Var(columns[target])]))
            else:
                out[name] = self.emit(
                    "a", types.get(name, ht.WILDCARD),
                    ir.BuiltinCall(fn, [ir.Var(columns[column])]))
        return out

    def _op_sort(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        keys = node["keys"]
        key_exprs = [ir.Var(columns[name]) for name, _ in keys]
        key_arg: ir.Expr
        if len(key_exprs) == 1:
            key_arg = key_exprs[0]
        else:
            key_arg = ir.BuiltinCall("list", key_exprs)
        asc_arg = ir.BuiltinCall(
            "concat", [ir.Literal(bool(asc), ht.BOOL)
                       for _, asc in keys])
        order = self.emit("ord", ht.I64,
                          ir.BuiltinCall("order", [key_arg, asc_arg]))
        out: dict[str, str] = {}
        for name, _ in node["output"]:
            out[name] = self.emit(
                "s", child_types.get(name, ht.WILDCARD),
                ir.BuiltinCall("index", [ir.Var(columns[name]),
                                         ir.Var(order)]))
        return out

    def _op_limit(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        out: dict[str, str] = {}
        for name, _ in node["output"]:
            out[name] = self.emit(
                "l", child_types.get(name, ht.WILDCARD),
                ir.BuiltinCall("take",
                               [ir.Var(columns[name]),
                                ir.Literal(node["count"], ht.I64)]))
        return out

    def _op_table_udf(self, node: dict) -> dict[str, str]:
        columns = self.translate(node["child"])
        child_types = self._output_types(node["child"])
        udf = self.udfs.get(node["udf"])
        args: list[ir.Expr] = []
        for column in node["inputs"]:
            arg: ir.Expr = ir.Var(columns[column])
            if child_types.get(column) == ht.DATE:
                converted = ir.BuiltinCall("date_to_i64", [arg])
                arg = ir.Var(self.emit("d", ht.I64, converted))
            args.append(arg)
        result = self.emit("udf", ht.list_of(ht.WILDCARD),
                           ir.MethodCall(udf.name, args))
        out: dict[str, str] = {}
        for index, (name, type_) in enumerate(udf.output_columns):
            item = ir.BuiltinCall("list_item",
                                  [ir.Var(result),
                                   ir.Literal(index, ht.I64)])
            out[name] = self.emit("u", type_, ir.Cast(item, type_)
                                  if not type_.is_wildcard else item)
        return out

    # -- expressions -------------------------------------------------------------

    def _as_var(self, expr: ir.Expr, type_: ht.HorseType,
                hint: str) -> str:
        if isinstance(expr, ir.Var):
            return expr.name
        return self.emit(hint, type_, expr)

    def _expr(self, node: dict, columns: dict[str, str],
              types: dict[str, ht.HorseType]) -> ir.Expr:
        kind = node["kind"]
        if kind == "col":
            try:
                return ir.Var(columns[node["name"]])
            except KeyError:
                raise PlanError(
                    f"column {node['name']!r} is not available here; "
                    f"have {sorted(columns)}") from None
        if kind == "int":
            return ir.Literal(node["value"], ht.I64)
        if kind == "float":
            return ir.Literal(node["value"], ht.F64)
        if kind == "str":
            return ir.Literal(node["value"], ht.STR)
        if kind == "date":
            return ir.Literal(np.datetime64(node["value"], "D"), ht.DATE)
        if kind == "binop":
            return self._binop(node, columns, types)
        if kind == "unop":
            operand = self._expr(node["operand"], columns, types)
            if node["op"] == "not":
                return ir.BuiltinCall(
                    "not", [self._anchor(operand, columns, types)])
            return ir.BuiltinCall(
                "neg", [self._anchor(operand, columns, types)])
        if kind == "call":
            return self._call(node, columns, types)
        if kind == "case":
            return self._case(node, columns, types)
        if kind == "in":
            return self._in_list(node, columns, types)
        if kind == "between":
            return self._between(node, columns, types)
        raise PlanError(f"unknown expression kind {kind!r}")

    def _anchor(self, expr: ir.Expr, columns, types) -> ir.Expr:
        """Flatten nested calls into temporaries (3-address form)."""
        if isinstance(expr, (ir.Var, ir.Literal, ir.SymbolLit)):
            return expr
        return ir.Var(self.emit("e", ht.WILDCARD, expr))

    def _binop(self, node: dict, columns, types) -> ir.Expr:
        op = node["op"]
        left = self._anchor(self._expr(node["left"], columns, types),
                            columns, types)
        right = self._anchor(self._expr(node["right"], columns, types),
                             columns, types)
        if op in ("and", "or"):
            return ir.BuiltinCall(op, [left, right])
        if op == "like":
            return ir.BuiltinCall("like", [left, right])
        if op in _CMP_OPS:
            return ir.BuiltinCall(_CMP_OPS[op], [left, right])
        if op in _ARITH_OPS:
            return ir.BuiltinCall(_ARITH_OPS[op], [left, right])
        raise PlanError(f"unknown operator {op!r}")

    def _call(self, node: dict, columns, types) -> ir.Expr:
        name = node["name"]
        if self.udfs.is_scalar(name):
            # UDF boundary: date values cross as int64 day counts on both
            # systems (the engine's bridge converts; here it is a free
            # elementwise reinterpretation that fuses away).
            args = [self._udf_arg(a, columns, types)
                    for a in node["args"]]
            return ir.MethodCall(self.udfs.get(name).name, args)
        args = [self._anchor(self._expr(a, columns, types),
                             columns, types)
                for a in node["args"]]
        lowered = name.lower()
        if lowered in ("sum", "avg", "min", "max"):
            return ir.BuiltinCall(lowered, args)
        if lowered == "count":
            return ir.BuiltinCall("count", args)
        raise PlanError(f"unknown function {name!r}")

    def _udf_arg(self, node: dict, columns, types) -> ir.Expr:
        if node["kind"] == "date":
            days = int(np.datetime64(node["value"], "D").astype(np.int64))
            return ir.Literal(days, ht.I64)
        expr = self._anchor(self._expr(node, columns, types),
                            columns, types)
        if node["kind"] == "col" and types.get(node["name"]) == ht.DATE:
            converted = ir.BuiltinCall("date_to_i64", [expr])
            return ir.Var(self.emit("d", ht.I64, converted))
        return expr

    def _case(self, node: dict, columns, types) -> ir.Expr:
        whens = node["whens"]
        if node["else"] is not None:
            result = self._anchor(self._expr(node["else"], columns,
                                             types), columns, types)
        else:
            result = ir.Literal(0, ht.I64)
        for cond_json, value_json in reversed(whens):
            cond = self._anchor(self._expr(cond_json, columns, types),
                                columns, types)
            value = self._anchor(self._expr(value_json, columns, types),
                                 columns, types)
            result = ir.Var(self.emit(
                "cw", ht.WILDCARD,
                ir.BuiltinCall("if_else", [cond, value, result])))
        return result

    def _in_list(self, node: dict, columns, types) -> ir.Expr:
        expr = self._anchor(self._expr(node["expr"], columns, types),
                            columns, types)
        items = [self._expr(i, columns, types) for i in node["items"]]
        pool = self._anchor(ir.BuiltinCall("concat", items), columns,
                            types)
        member = ir.BuiltinCall("member", [expr, pool])
        if node["negated"]:
            anchored = self._anchor(member, columns, types)
            return ir.BuiltinCall("not", [anchored])
        return member

    def _between(self, node: dict, columns, types) -> ir.Expr:
        expr = self._anchor(self._expr(node["expr"], columns, types),
                            columns, types)
        low = self._anchor(self._expr(node["low"], columns, types),
                           columns, types)
        high = self._anchor(self._expr(node["high"], columns, types),
                            columns, types)
        lower = self._anchor(ir.BuiltinCall("geq", [expr, low]),
                             columns, types)
        upper = self._anchor(ir.BuiltinCall("leq", [expr, high]),
                             columns, types)
        result = ir.BuiltinCall("and", [lower, upper])
        if node["negated"]:
            anchored = self._anchor(result, columns, types)
            return ir.BuiltinCall("not", [anchored])
        return result

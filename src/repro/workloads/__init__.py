"""Benchmark workload definitions: MATLAB sources, TPC-H UDF queries, and
the Black-Scholes bs0–bs3 query variants."""

from repro.workloads.matlab_sources import (  # noqa: F401
    BLACKSCHOLES_MATLAB, BLACKSCHOLES_TABLE_MATLAB, MORGAN_MATLAB,
)

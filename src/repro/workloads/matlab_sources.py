"""MATLAB sources for the evaluation workloads.

These are the programs HorsePower compiles through the McLab-style
pipeline: Black-Scholes (reimplemented from PARSEC as a vectorized MATLAB
function, as the paper describes) with its CNDF helper, the Morgan kernel
with its ``msum`` helper, and the table-UDF wrapper used by Table 4.
"""

from __future__ import annotations

__all__ = ["BLACKSCHOLES_MATLAB", "BLACKSCHOLES_TABLE_MATLAB",
           "MORGAN_MATLAB", "CNDF_MATLAB"]

CNDF_MATLAB = """
function N = cndf(x)
    invsqrt2pi = 0.39894228040143270286;
    ax = abs(x);
    k = 1 ./ (1 + 0.2316419 .* ax);
    k2 = k .* k;
    k3 = k2 .* k;
    k4 = k3 .* k;
    k5 = k4 .* k;
    poly = 0.319381530 .* k - 0.356563782 .* k2 + 1.781477937 .* k3 ...
           - 1.821255978 .* k4 + 1.330274429 .* k5;
    n = 1 - invsqrt2pi .* exp(0 - 0.5 .* ax .* ax) .* poly;
    N = n .* (x >= 0) + (1 - n) .* (x < 0);
end
"""

BLACKSCHOLES_MATLAB = """
function P = blackScholes(sptprice, strike, rate, volatility, otime, otype)
    logterm = log(sptprice ./ strike);
    powterm = 0.5 .* volatility .* volatility;
    den = volatility .* sqrt(otime);
    d1 = (((rate + powterm) .* otime) + logterm) ./ den;
    d2 = d1 - den;
    NofXd1 = cndf(d1);
    NofXd2 = cndf(d2);
    futureValue = strike .* exp(0 - rate .* otime);
    callVal = (sptprice .* NofXd1) - (futureValue .* NofXd2);
    putVal = (futureValue .* (1 - NofXd2)) - (sptprice .* (1 - NofXd1));
    P = otype .* putVal + (1 - otype) .* callVal;
end
""" + CNDF_MATLAB

BLACKSCHOLES_TABLE_MATLAB = """
function T = blackScholesTbl(sptprice, strike, rate, volatility, otime, otype)
    P = blackScholes(sptprice, strike, rate, volatility, otime, otype);
    T = table(sptprice, otype, P);
end
""" + BLACKSCHOLES_MATLAB

MORGAN_MATLAB = """
function r = morgan(n, price, volume)
    pv = price .* volume;
    s1 = msum(pv, n);
    s2 = msum(volume, n);
    vwap = s1 ./ s2;
    tail = price(n:end);
    dev = tail - vwap;
    scale = sqrt(mean(dev .* dev));
    z = dev ./ scale;
    signal = sign(z) .* min(abs(z), 3);
    r = sum(signal .* dev);
end
function s = msum(x, n)
    c = cumsum(x);
    s = c(n:end) - [0, c(1:end-n)];
end
"""

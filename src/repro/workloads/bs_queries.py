"""The Black-Scholes SQL benchmark: bs0–bs3 variants (paper Section 4.4).

Ten queries per UDF style (scalar / table):

* ``bs0_base`` — compute option prices for every row;
* ``bs1_{high,med,low}`` — a predicate on the *input* column ``spotPrice``
  (can the system filter before pricing?);
* ``bs2_{high,med,low}`` — same predicate, but ``optionPrice`` is *not in
  the result* (can the system avoid pricing entirely?);
* ``bs3_{high,med,low}`` — a predicate on the *computed* ``optionPrice``
  (no avoidance possible).

Thresholds are chosen against the uniform-[2,200] ``spotPrice`` and the
empirical ``optionPrice`` distribution so the selectivities approximate
the paper's 0.2 % / 50.9 % / 99.8 % (bs1/bs2) and 10 % / 49.5 % / 90 %
(bs3) columns.
"""

from __future__ import annotations

from repro.core import types as ht
from repro.data.blackscholes import calc_option_price
from repro.workloads.matlab_sources import (BLACKSCHOLES_MATLAB,
                                            BLACKSCHOLES_TABLE_MATLAB)

__all__ = ["SCALAR_QUERIES", "TABLE_QUERIES", "BS_VARIANT_NAMES",
           "PAPER_SELECTIVITY", "register_bs_udfs"]

BS_VARIANT_NAMES = ("bs0_base", "bs1_high", "bs1_med", "bs1_low",
                    "bs2_high", "bs2_med", "bs2_low",
                    "bs3_high", "bs3_med", "bs3_low")

#: The paper's Table 4 selectivity column, for the report.
PAPER_SELECTIVITY = {
    "bs0_base": 1.000, "bs1_high": 0.002, "bs1_med": 0.509,
    "bs1_low": 0.998, "bs2_high": 0.002, "bs2_med": 0.509,
    "bs2_low": 0.998, "bs3_high": 0.100, "bs3_med": 0.495,
    "bs3_low": 0.900,
}

# spotPrice ~ U[2, 200]: "< a OR > b" predicates tuned per selectivity.
_SPOT_PRED = {
    "high": "spotPrice < 2.2 OR spotPrice > 199.8",   # ≈ 0.2 %
    "med": "spotPrice < 50 OR spotPrice > 150",       # ≈ 49.5 %
    "low": "spotPrice < 100 OR spotPrice > 101",      # ≈ 99.5 %
}
# optionPrice thresholds (empirical quantiles of the generated data).
_PRICE_PRED = {
    "high": "optionPrice > 106",       # ≈ 10 %
    "med": "optionPrice > 20",         # ≈ 50 %
    "low": "optionPrice > 0.000001",   # ≈ 90 %
}

_UDF_ARGS = "spotPrice, strike, rate, volatility, otime, optionType"


def _scalar_queries() -> dict[str, str]:
    queries = {
        "bs0_base": f"""
            SELECT spotPrice, optionType,
                   bScholesUDF({_UDF_ARGS}) AS optionPrice
            FROM blackScholesData
        """,
    }
    for level, pred in _SPOT_PRED.items():
        queries[f"bs1_{level}"] = f"""
            SELECT spotPrice, optionType,
                   bScholesUDF({_UDF_ARGS}) AS optionPrice
            FROM blackScholesData
            WHERE {pred}
        """
        queries[f"bs2_{level}"] = f"""
            SELECT spotPrice, optionType
            FROM (SELECT spotPrice, optionType,
                         bScholesUDF({_UDF_ARGS}) AS optionPrice
                  FROM blackScholesData) AS tableBS
            WHERE {pred}
        """
    for level, pred in _PRICE_PRED.items():
        queries[f"bs3_{level}"] = f"""
            SELECT spotPrice, optionType
            FROM (SELECT spotPrice, optionType,
                         bScholesUDF({_UDF_ARGS}) AS optionPrice
                  FROM blackScholesData) AS tableBS
            WHERE {pred}
        """
    return queries


def _table_queries() -> dict[str, str]:
    from_udf = f"""bScholesTblUDF((SELECT {_UDF_ARGS}
                       FROM blackScholesData))"""
    queries = {
        "bs0_base": f"""
            SELECT spotPrice, optionType, optionPrice
            FROM {from_udf}
        """,
    }
    for level, pred in _SPOT_PRED.items():
        queries[f"bs1_{level}"] = f"""
            SELECT spotPrice, optionType, optionPrice
            FROM {from_udf}
            WHERE {pred}
        """
        queries[f"bs2_{level}"] = f"""
            SELECT spotPrice, optionType
            FROM {from_udf}
            WHERE {pred}
        """
    for level, pred in _PRICE_PRED.items():
        queries[f"bs3_{level}"] = f"""
            SELECT spotPrice, optionType
            FROM {from_udf}
            WHERE {pred}
        """
    return queries


SCALAR_QUERIES = _scalar_queries()
TABLE_QUERIES = _table_queries()

_F64x6 = [ht.F64] * 6


def _bscholes_table_py(spot, strike, rate, volatility, otime, otype):
    price = calc_option_price(spot, strike, rate, volatility, otime,
                              otype)
    return [spot, otype, price]


def register_bs_udfs(system) -> None:
    """Register the scalar and table Black-Scholes UDFs on a
    HorsePowerSystem (the registry is shared with the baseline)."""
    system.register_scalar_udf(
        "bScholesUDF", BLACKSCHOLES_MATLAB, list(_F64x6), ht.F64,
        python_impl=calc_option_price)
    system.register_table_udf(
        "bScholesTblUDF", BLACKSCHOLES_TABLE_MATLAB, list(_F64x6),
        [("spotPrice", ht.F64), ("optionType", ht.F64),
         ("optionPrice", ht.F64)],
        python_impl=_bscholes_table_py)

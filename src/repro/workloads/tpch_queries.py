"""TPC-H queries q1, q6, q12, q14, q19 — plain and Froid-style UDF forms.

The UDF variants follow Froid's rewrites (paper Section 4.3): parts of the
SELECT or WHERE clause move into scalar UDFs.  Each UDF is defined twice
with matching semantics — MATLAB source for HorsePower and a NumPy
function for the MonetDB-like baseline — and registered through
:func:`register_tpch_udfs`.

Dates cross the UDF boundary as int64 day counts (epoch 1970-01-01); the
MATLAB sources embed the day-count constants, computed below from the
query's date literals.
"""

from __future__ import annotations

import numpy as np

from repro.core import types as ht

__all__ = ["PLAIN_QUERIES", "UDF_QUERIES", "EXTENDED_PLAIN_QUERIES",
           "register_tpch_udfs", "TPCH_UDF_QUERY_NAMES"]

TPCH_UDF_QUERY_NAMES = ("q1", "q6", "q12", "q14", "q19")


def _days(date: str) -> int:
    return int(np.datetime64(date, "D").astype(np.int64))


_Q6_LO = _days("1994-01-01")
_Q6_HI = _days("1995-01-01")
_Q12_LO = _days("1994-01-01")
_Q12_HI = _days("1995-01-01")


# ---------------------------------------------------------------------------
# plain SQL
# ---------------------------------------------------------------------------

PLAIN_QUERIES: dict[str, str] = {
    "q1": """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax))
                   AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    "q6": """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
    "q12": """
        SELECT l_shipmode,
               SUM(CASE WHEN o_orderpriority = '1-URGENT'
                          OR o_orderpriority = '2-HIGH'
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                         AND o_orderpriority <> '2-HIGH'
                        THEN 1 ELSE 0 END) AS low_line_count
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
          AND l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= DATE '1994-01-01'
          AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    "q14": """
        SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                                 THEN l_extendedprice * (1 - l_discount)
                                 ELSE 0.0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
    """,
    "q19": """
        SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, part
        WHERE p_partkey = l_partkey
          AND l_shipmode IN ('AIR', 'REG AIR')
          AND l_shipinstruct = 'DELIVER IN PERSON'
          AND ((p_brand = 'Brand#12'
                AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK',
                                    'SM PKG')
                AND l_quantity BETWEEN 1 AND 11
                AND p_size BETWEEN 1 AND 5)
            OR (p_brand = 'Brand#23'
                AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG',
                                    'MED PACK')
                AND l_quantity BETWEEN 10 AND 20
                AND p_size BETWEEN 1 AND 10)
            OR (p_brand = 'Brand#34'
                AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK',
                                    'LG PKG')
                AND l_quantity BETWEEN 20 AND 30
                AND p_size BETWEEN 1 AND 15))
    """,
}


# ---------------------------------------------------------------------------
# UDF-modified SQL (Froid-style rewrites)
# ---------------------------------------------------------------------------

UDF_QUERIES: dict[str, str] = {
    "q1": """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(q1DiscPriceUDF(l_extendedprice, l_discount))
                   AS sum_disc_price,
               SUM(q1ChargeUDF(l_extendedprice, l_discount, l_tax))
                   AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    "q6": """
        SELECT SUM(q6RevenueUDF(l_extendedprice, l_discount)) AS revenue
        FROM lineitem
        WHERE q6PredUDF(l_shipdate, l_discount, l_quantity) > 0
    """,
    "q12": """
        SELECT l_shipmode,
               SUM(q12HighUDF(o_orderpriority)) AS high_line_count,
               SUM(q12LowUDF(o_orderpriority)) AS low_line_count
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
          AND q12PredUDF(l_shipmode, l_shipdate, l_commitdate,
                         l_receiptdate) > 0
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    "q14": """
        SELECT 100.00
               * SUM(q14PromoRevUDF(p_type, l_extendedprice, l_discount))
               / SUM(q1DiscPriceUDF(l_extendedprice, l_discount))
               AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
    """,
    "q19": """
        SELECT SUM(q1DiscPriceUDF(l_extendedprice, l_discount)) AS revenue
        FROM lineitem, part
        WHERE p_partkey = l_partkey
          AND q19MatchUDF(p_brand, p_container, l_quantity, p_size,
                          l_shipmode, l_shipinstruct) > 0
    """,
}


# ---------------------------------------------------------------------------
# UDF definitions — MATLAB source (HorsePower) + NumPy impl (baseline)
# ---------------------------------------------------------------------------

Q1_DISC_PRICE_MATLAB = """
function r = discPrice(price, discount)
    r = price .* (1 - discount);
end
"""


def q1_disc_price_py(price, discount):
    return price * (1.0 - discount)


Q1_CHARGE_MATLAB = """
function r = charge(price, discount, tax)
    r = price .* (1 - discount) .* (1 + tax);
end
"""


def q1_charge_py(price, discount, tax):
    return price * (1.0 - discount) * (1.0 + tax)


Q6_REVENUE_MATLAB = """
function r = q6revenue(price, discount)
    r = price .* discount;
end
"""


def q6_revenue_py(price, discount):
    return price * discount


Q6_PRED_MATLAB = f"""
function m = q6pred(shipdate, discount, qty)
    m = 1.0 .* ((shipdate >= {_Q6_LO}) & (shipdate < {_Q6_HI}) ...
        & (discount >= 0.05) & (discount <= 0.07) & (qty < 24));
end
"""


def q6_pred_py(shipdate_days, discount, qty):
    mask = ((shipdate_days >= _Q6_LO) & (shipdate_days < _Q6_HI)
            & (discount >= 0.05) & (discount <= 0.07) & (qty < 24))
    return mask.astype(np.float64)


Q12_PRED_MATLAB = f"""
function m = q12pred(shipmode, shipdate, commitdate, receiptdate)
    sm = strcmp(shipmode, 'MAIL') | strcmp(shipmode, 'SHIP');
    m = 1.0 .* (sm & (commitdate < receiptdate) ...
        & (shipdate < commitdate) ...
        & (receiptdate >= {_Q12_LO}) & (receiptdate < {_Q12_HI}));
end
"""


def q12_pred_py(shipmode, shipdate_days, commitdate_days,
                receiptdate_days):
    mask = (((shipmode == "MAIL") | (shipmode == "SHIP"))
            & (commitdate_days < receiptdate_days)
            & (shipdate_days < commitdate_days)
            & (receiptdate_days >= _Q12_LO)
            & (receiptdate_days < _Q12_HI))
    return mask.astype(np.float64)


Q12_HIGH_MATLAB = """
function h = q12high(prio)
    h = 1.0 .* (strcmp(prio, '1-URGENT') | strcmp(prio, '2-HIGH'));
end
"""


def q12_high_py(prio):
    mask = (prio == "1-URGENT") | (prio == "2-HIGH")
    return np.asarray(mask, dtype=np.float64)


Q12_LOW_MATLAB = """
function l = q12low(prio)
    l = 1.0 .* (~(strcmp(prio, '1-URGENT') | strcmp(prio, '2-HIGH')));
end
"""


def q12_low_py(prio):
    mask = ~((prio == "1-URGENT") | (prio == "2-HIGH"))
    return np.asarray(mask, dtype=np.float64)


Q14_PROMO_REV_MATLAB = """
function r = q14promo(ptype, price, discount)
    r = startsWith(ptype, 'PROMO') .* (price .* (1 - discount));
end
"""


def q14_promo_rev_py(ptype, price, discount):
    promo = np.fromiter((t.startswith("PROMO") for t in ptype),
                        dtype=np.float64, count=len(ptype))
    return promo * (price * (1.0 - discount))


Q19_MATCH_MATLAB = """
function m = q19match(brand, container, qty, size, shipmode, shipinstruct)
    b1 = strcmp(brand, 'Brand#12');
    c1 = strcmp(container, 'SM CASE') | strcmp(container, 'SM BOX') ...
       | strcmp(container, 'SM PACK') | strcmp(container, 'SM PKG');
    m1 = b1 & c1 & (qty >= 1) & (qty <= 11) & (size >= 1) & (size <= 5);
    b2 = strcmp(brand, 'Brand#23');
    c2 = strcmp(container, 'MED BAG') | strcmp(container, 'MED BOX') ...
       | strcmp(container, 'MED PKG') | strcmp(container, 'MED PACK');
    m2 = b2 & c2 & (qty >= 10) & (qty <= 20) & (size >= 1) & (size <= 10);
    b3 = strcmp(brand, 'Brand#34');
    c3 = strcmp(container, 'LG CASE') | strcmp(container, 'LG BOX') ...
       | strcmp(container, 'LG PACK') | strcmp(container, 'LG PKG');
    m3 = b3 & c3 & (qty >= 20) & (qty <= 30) & (size >= 1) & (size <= 15);
    sm = strcmp(shipmode, 'AIR') | strcmp(shipmode, 'REG AIR');
    si = strcmp(shipinstruct, 'DELIVER IN PERSON');
    m = 1.0 .* ((m1 | m2 | m3) & sm & si);
end
"""

_Q19_CONTAINERS = {
    "Brand#12": {"SM CASE", "SM BOX", "SM PACK", "SM PKG"},
    "Brand#23": {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
    "Brand#34": {"LG CASE", "LG BOX", "LG PACK", "LG PKG"},
}


def q19_match_py(brand, container, qty, size, shipmode, shipinstruct):
    def clause(brand_name, qlo, qhi, shi):
        pool = _Q19_CONTAINERS[brand_name]
        in_pool = np.fromiter((c in pool for c in container),
                              dtype=np.bool_, count=len(container))
        return ((brand == brand_name) & in_pool
                & (qty >= qlo) & (qty <= qhi)
                & (size >= 1) & (size <= shi))

    mask = (clause("Brand#12", 1, 11, 5)
            | clause("Brand#23", 10, 20, 10)
            | clause("Brand#34", 20, 30, 15))
    mask &= (shipmode == "AIR") | (shipmode == "REG AIR")
    mask &= shipinstruct == "DELIVER IN PERSON"
    return mask.astype(np.float64)


def register_tpch_udfs(system) -> None:
    """Register every TPC-H UDF on a :class:`HorsePowerSystem` (sharing
    its registry with a baseline makes them visible there too)."""
    system.register_scalar_udf(
        "q1DiscPriceUDF", Q1_DISC_PRICE_MATLAB, [ht.F64, ht.F64],
        ht.F64, python_impl=q1_disc_price_py)
    system.register_scalar_udf(
        "q1ChargeUDF", Q1_CHARGE_MATLAB, [ht.F64, ht.F64, ht.F64],
        ht.F64, python_impl=q1_charge_py)
    system.register_scalar_udf(
        "q6RevenueUDF", Q6_REVENUE_MATLAB, [ht.F64, ht.F64],
        ht.F64, python_impl=q6_revenue_py)
    system.register_scalar_udf(
        "q6PredUDF", Q6_PRED_MATLAB, [ht.DATE, ht.F64, ht.F64],
        ht.F64, python_impl=q6_pred_py)
    system.register_scalar_udf(
        "q12PredUDF", Q12_PRED_MATLAB,
        [ht.STR, ht.DATE, ht.DATE, ht.DATE], ht.F64,
        python_impl=q12_pred_py)
    system.register_scalar_udf(
        "q12HighUDF", Q12_HIGH_MATLAB, [ht.STR], ht.F64,
        python_impl=q12_high_py)
    system.register_scalar_udf(
        "q12LowUDF", Q12_LOW_MATLAB, [ht.STR], ht.F64,
        python_impl=q12_low_py)
    system.register_scalar_udf(
        "q14PromoRevUDF", Q14_PROMO_REV_MATLAB, [ht.STR, ht.F64, ht.F64],
        ht.F64, python_impl=q14_promo_rev_py)
    system.register_scalar_udf(
        "q19MatchUDF", Q19_MATCH_MATLAB,
        [ht.STR, ht.STR, ht.F64, ht.I64, ht.STR, ht.STR],
        ht.F64, python_impl=q19_match_py)


# ---------------------------------------------------------------------------
# Additional plain TPC-H queries (coverage beyond the five modified ones;
# the paper reports HorsePower executes the full benchmark)
# ---------------------------------------------------------------------------

EXTENDED_PLAIN_QUERIES: dict[str, str] = {
    "q3": """
        SELECT l_orderkey,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue,
               o_orderdate, o_shippriority
        FROM customer, orders, lineitem
        WHERE c_mktsegment = 'BUILDING'
          AND c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND o_orderdate < DATE '1995-03-15'
          AND l_shipdate > DATE '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    "q5": """
        SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer, orders, lineitem, supplier, nation, region
        WHERE c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND l_suppkey = s_suppkey
          AND c_nationkey = s_nationkey
          AND s_nationkey = n_nationkey
          AND n_regionkey = r_regionkey
          AND r_name = 'ASIA'
          AND o_orderdate >= DATE '1994-01-01'
          AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    "q10": """
        SELECT c_custkey, c_name,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue,
               c_acctbal, n_name, c_address, c_phone, c_comment
        FROM customer, orders, lineitem, nation
        WHERE c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND o_orderdate >= DATE '1993-10-01'
          AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
          AND l_returnflag = 'R'
          AND c_nationkey = n_nationkey
        GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name,
                 c_address, c_comment
        ORDER BY revenue DESC
        LIMIT 20
    """,
}
